"""Shared machinery for the figure experiments.

Every evaluation figure in the paper is one of three shapes:

* a **σ sweep** averaged over all datasets (Figures 5–7, 11);
* a **per-dataset bar chart** under a mixed-error scenario (Figures 8–10,
  15–17);
* a **parameter sweep** of the moving-average filters (Figures 13–14).

The helpers here run those shapes on top of
:func:`repro.evaluation.run_similarity_experiment` and cache σ-sweep
results in-process so Figures 5, 6 and 7 (three views of the same runs)
compute the underlying experiments once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.rng import spawn
from ..datasets import generate_dataset
from ..evaluation.harness import (
    ExperimentResult,
    get_default_scoring,
    run_similarity_experiment,
)
from ..perturbation.scenarios import ConstantScenario, PerturbationScenario
from ..queries.techniques import (
    DustTechnique,
    EuclideanTechnique,
    FilteredTechnique,
    ProudTechnique,
    Technique,
)
from .config import EXPERIMENT_SEED, Scale

TechniqueFactory = Callable[[PerturbationScenario], List[Technique]]


def standard_pdf_techniques(scenario: PerturbationScenario) -> List[Technique]:
    """Euclidean + DUST + PROUD, configured for ``scenario``.

    PROUD receives the scenario's constant σ (its model cannot express
    anything richer — Section 3.1); DUST receives each series' reported
    model implicitly through the uncertain series.
    """
    return [
        EuclideanTechnique(),
        DustTechnique(),
        ProudTechnique(assumed_std=scenario.proud_std),
    ]


def moving_average_techniques(scenario: PerturbationScenario) -> List[Technique]:
    """Euclidean + DUST + UMA + UEMA (Figures 15–17 lineup)."""
    return [
        EuclideanTechnique(),
        DustTechnique(),
        FilteredTechnique.uma(),
        FilteredTechnique.uema(),
    ]


def dataset_for_scale(name: str, scale: Scale, seed: int):
    """Generate a dataset at the scale's size/length."""
    return generate_dataset(
        name,
        seed=spawn(seed, "dataset", name),
        n_series=scale.n_series,
        length=scale.series_length,
    )


def run_on_datasets(
    scale: Scale,
    scenario: PerturbationScenario,
    technique_factory: TechniqueFactory,
    seed: int = EXPERIMENT_SEED,
    dataset_names: Optional[Sequence[str]] = None,
    scoring: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run one scenario over every dataset of the scale."""
    names = tuple(dataset_names or scale.dataset_names)
    # One technique set for the whole sweep: the harness resets per-series
    # caches between datasets, while expensive cross-dataset state (DUST's
    # lookup tables, which depend only on the error distributions) is
    # legitimately reused.
    techniques = technique_factory(scenario)
    results: Dict[str, ExperimentResult] = {}
    for name in names:
        exact = dataset_for_scale(name, scale, seed)
        results[name] = run_similarity_experiment(
            exact,
            scenario,
            techniques,
            n_queries=scale.n_queries,
            seed=spawn(seed, "run", name, scenario.name),
            scoring=scoring,
        )
    return results


# ---------------------------------------------------------------------------
# σ sweeps (Figures 5, 6, 7, 11) with an in-process memo so the three views
# of the same sweep don't recompute it.
# ---------------------------------------------------------------------------

_SWEEP_CACHE: Dict[Tuple, Dict] = {}


def sigma_sweep(
    scale: Scale,
    family: str,
    technique_factory: TechniqueFactory = standard_pdf_techniques,
    seed: int = EXPERIMENT_SEED,
    factory_key: str = "standard",
    scoring: Optional[str] = None,
) -> Dict[float, Dict[str, ExperimentResult]]:
    """All-dataset runs for every σ of the scale under one error family.

    Returns ``{sigma: {dataset: ExperimentResult}}``; results are memoized
    per (scale, family, factory_key, seed, scoring) for the lifetime of
    the process.
    """
    # Resolve the scoring default *before* keying the memo: a sweep cached
    # while the process default was "matrix" must not be served after a
    # set_default_scoring("profile") switch (the timings would silently
    # measure the wrong path).
    if scoring is None:
        scoring = get_default_scoring()
    cache_key = (scale.name, family, factory_key, seed, scoring)
    cached = _SWEEP_CACHE.get(cache_key)
    if cached is not None:
        return cached
    sweep: Dict[float, Dict[str, ExperimentResult]] = {}
    for sigma in scale.sigmas:
        scenario = ConstantScenario(family, sigma)
        sweep[sigma] = run_on_datasets(
            scale, scenario, technique_factory, seed=seed, scoring=scoring
        )
    _SWEEP_CACHE[cache_key] = sweep
    return sweep


def clear_sweep_cache() -> None:
    """Drop memoized sweeps (tests use this to force recomputation)."""
    _SWEEP_CACHE.clear()


def averaged_metric(
    per_dataset: Dict[str, ExperimentResult],
    technique_name: str,
    metric: str,
) -> float:
    """Average one technique's metric over datasets.

    ``metric`` is ``"f1"``, ``"precision"``, ``"recall"`` or
    ``"seconds_per_query"``.
    """
    values = []
    for result in per_dataset.values():
        outcome = result.techniques[technique_name]
        if metric == "seconds_per_query":
            values.append(outcome.mean_query_seconds())
        else:
            values.append(getattr(outcome, metric)().mean)
    return float(np.mean(values))
