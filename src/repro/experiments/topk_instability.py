"""The Section 4.1.2 argument, run as an experiment: top-k is unstable
for probabilistic techniques.

The paper rejects top-k as the comparison task because "MUNICH and PROUD
might produce very different top-k answers even if ε varies a little":
their candidate ranking is by ``Pr(distance <= ε)``, and that ordering
depends on ε.  Distance techniques' rankings are ε-free by construction.

This experiment quantifies the claim: for each query we rank candidates
by PROUD match probability at ε and at ``(1+δ)·ε``, and report the
average Jaccard overlap of the two top-k sets.  The same is done for the
Euclidean and DUST rankings (trivially 1.0) and for MUNICH on a small
workload.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..evaluation.harness import DEFAULT_MUNICH_SAMPLES
from ..munich.query import Munich
from ..perturbation.scenarios import ConstantScenario
from ..queries.techniques import (
    DustTechnique,
    EuclideanTechnique,
    MunichTechnique,
    ProudTechnique,
)
from ..queries.thresholds import calibrate_queries, technique_epsilon
from .config import EXPERIMENT_SEED, Scale, get_scale
from .runner import dataset_for_scale

#: Relative ε perturbations at which rankings are compared.
EPSILON_DELTAS = (0.1, 0.25, 0.5)
TOP_K = 10


def _top_k_by_probability(
    technique, query, collection, query_index: int, epsilon: float, k: int
) -> frozenset:
    probabilities = []
    for index, candidate in enumerate(collection):
        if index == query_index:
            probabilities.append(-np.inf)
            continue
        probabilities.append(
            technique.probability(query, candidate, epsilon)
        )
    order = np.argsort(np.asarray(probabilities), kind="stable")[::-1]
    return frozenset(int(i) for i in order[:k])


def _top_k_by_distance(
    technique, query, collection, query_index: int, k: int
) -> frozenset:
    distances = []
    for index, candidate in enumerate(collection):
        if index == query_index:
            distances.append(np.inf)
            continue
        distances.append(technique.distance(query, candidate))
    order = np.argsort(np.asarray(distances), kind="stable")
    return frozenset(int(i) for i in order[:k])


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def run_topk_instability(
    scale: Scale = None,
    seed: int = EXPERIMENT_SEED,
    dataset_name: str = "GunPoint",
    sigma: float = 1.0,
    k: int = TOP_K,
) -> Dict[str, Dict[float, float]]:
    """``{technique: {delta: mean Jaccard overlap of top-k at ε vs (1+δ)ε}}``.

    Distance techniques must come out at exactly 1.0; probabilistic ones
    below it — the further below, the stronger the paper's point.

    PROUD's probability ranking only reorders under ε changes when the
    candidates' distance-distribution *variances* differ, so the workload
    uses the mixed-σ scenario (under constant σ its ranking is nearly
    ε-invariant; MUNICH destabilizes even there, see
    :func:`run_munich_topk_instability`).
    """
    from ..perturbation.scenarios import MixedStdScenario

    scale = scale if scale is not None else get_scale()
    exact = dataset_for_scale(dataset_name, scale, seed)
    scenario = MixedStdScenario("normal", std_high=max(1.0, sigma),
                                std_low=0.4 * sigma)
    perturbed = [
        scenario.apply(series, _spawn(seed, index))
        for index, series in enumerate(exact)
    ]
    calibrations = calibrate_queries(exact.values_matrix(), k=k)
    query_indices = range(min(scale.n_queries, len(exact)))

    euclid = EuclideanTechnique()
    dust = DustTechnique()
    proud = ProudTechnique()  # uses the reported per-timestamp model

    overlaps: Dict[str, Dict[float, List[float]]] = {
        "Euclidean": {d: [] for d in EPSILON_DELTAS},
        "DUST": {d: [] for d in EPSILON_DELTAS},
        "PROUD": {d: [] for d in EPSILON_DELTAS},
    }
    for query_index in query_indices:
        calibration = calibrations[query_index]
        query = perturbed[query_index]
        epsilon = technique_epsilon(proud, perturbed, calibration)
        base_proud = _top_k_by_probability(
            proud, query, perturbed, query_index, epsilon, k
        )
        base_euclid = _top_k_by_distance(
            euclid, query, perturbed, query_index, k
        )
        base_dust = _top_k_by_distance(dust, query, perturbed, query_index, k)
        for delta in EPSILON_DELTAS:
            shifted = _top_k_by_probability(
                proud, query, perturbed, query_index, epsilon * (1 + delta), k
            )
            overlaps["PROUD"][delta].append(_jaccard(base_proud, shifted))
            # Distance rankings do not depend on ε at all.
            overlaps["Euclidean"][delta].append(
                _jaccard(
                    base_euclid,
                    _top_k_by_distance(
                        euclid, query, perturbed, query_index, k
                    ),
                )
            )
            overlaps["DUST"][delta].append(
                _jaccard(
                    base_dust,
                    _top_k_by_distance(dust, query, perturbed, query_index, k),
                )
            )
    return {
        name: {
            delta: float(np.mean(values))
            for delta, values in per_delta.items()
        }
        for name, per_delta in overlaps.items()
    }


def run_munich_topk_instability(
    seed: int = EXPERIMENT_SEED,
    n_series: int = 30,
    length: int = 6,
    sigma: float = 0.6,
    k: int = 5,
    n_queries: int = 4,
) -> Dict[float, float]:
    """MUNICH's top-k overlap at ε vs (1+δ)ε on a small workload."""
    from .config import TINY

    scale = Scale(
        name="topk-munich",
        n_series=n_series,
        series_length=length,
        n_queries=n_queries,
        sigmas=TINY.sigmas,
        dataset_names=("GunPoint",),
    )
    exact = dataset_for_scale("GunPoint", scale, seed)
    scenario = ConstantScenario("normal", sigma)
    multisample = [
        scenario.apply_multisample(
            series, DEFAULT_MUNICH_SAMPLES, _spawn(seed, index)
        )
        for index, series in enumerate(exact)
    ]
    technique = MunichTechnique(Munich(n_bins=512))
    calibrations = calibrate_queries(exact.values_matrix(), k=k)

    results: Dict[float, List[float]] = {d: [] for d in EPSILON_DELTAS}
    for query_index in range(n_queries):
        calibration = calibrations[query_index]
        query = multisample[query_index]
        epsilon = technique_epsilon(technique, multisample, calibration)
        base = _top_k_by_probability(
            technique, query, multisample, query_index, epsilon, k
        )
        for delta in EPSILON_DELTAS:
            shifted = _top_k_by_probability(
                technique, query, multisample, query_index,
                epsilon * (1 + delta), k,
            )
            results[delta].append(_jaccard(base, shifted))
    return {delta: float(np.mean(v)) for delta, v in results.items()}


def format_topk_instability(
    pdf_overlaps: Dict[str, Dict[float, float]],
    munich_overlaps: Dict[float, float],
) -> str:
    """Render the instability study as a table."""
    deltas = list(EPSILON_DELTAS)
    lines = [
        "Section 4.1.2 check — top-k stability under ε perturbation "
        f"(mean Jaccard overlap of top-{TOP_K} sets)",
        f"{'technique':<12}"
        + "".join(f"{'ε+' + format(d, '.0%'):>8}" for d in deltas),
    ]
    for name, per_delta in pdf_overlaps.items():
        cells = "".join(f"{per_delta[d]:>8.3f}" for d in deltas)
        lines.append(f"{name:<12}{cells}")
    cells = "".join(f"{munich_overlaps[d]:>8.3f}" for d in deltas)
    lines.append(f"{'MUNICH':<12}{cells}")
    lines.append(
        "(1.0 = ranking unaffected by ε; below 1.0 = the paper's argument "
        "against using top-k to compare probabilistic techniques)"
    )
    return "\n".join(lines)


def _spawn(seed: int, index: int):
    from ..core.rng import spawn

    return spawn(seed, "topk", index)
