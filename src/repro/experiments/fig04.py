"""Figure 4: the restricted-setting comparison including MUNICH.

Paper setup (Section 4.2.1): "We compare MUNICH, PROUD, DUST and Euclidean
on the Gun Point dataset, truncating it to 60 time series of length 6.
For each timestamp, we have 5 samples as input for MUNICH.  Results are
averaged on 5 random queries.  For both MUNICH and PROUD we are using the
optimal probabilistic threshold, τ, determined after repeated experiments.
Distance thresholds are chosen such that in the ground truth set they
return exactly 10 time series."

Three panels, one per error family (normal / uniform / exponential), each
sweeping σ over the scale's grid.

τ protocol: the paper fixes **one** τ per technique per panel ("the
optimal probabilistic threshold, τ", singular), found "after repeated
experiments".  We reproduce that: τ is tuned once at a low-σ design point
(the second σ of the grid) and then held fixed across the whole sweep.
MUNICH's τ is searched on the conventional coarse grid (its probability
is a semantic possible-worlds quantity); PROUD's on the full grid
(its probabilities are systematically deflated — see
:data:`repro.evaluation.tau.DEFAULT_TAU_GRID`).  Holding τ fixed is what
produces the paper's characteristic MUNICH collapse for larger σ: the
materialization spread grows with σ, match probabilities drain toward 0/1
noise, and a τ that was optimal at low σ returns degenerate result sets.
EXPERIMENTS.md discusses the sensitivity of this choice.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..evaluation.harness import run_similarity_experiment
from ..evaluation.tau import DEFAULT_TAU_GRID
from ..munich.query import Munich
from ..perturbation.scenarios import ConstantScenario
from ..queries.techniques import (
    DustTechnique,
    EuclideanTechnique,
    MunichTechnique,
    ProudTechnique,
)
from ..distributions import PAPER_FAMILIES
from .config import EXPERIMENT_SEED, Scale, get_scale
from .report import format_series_table
from .runner import dataset_for_scale

#: The paper's Figure 4 workload constants.
FIG4_N_SERIES = 60
FIG4_LENGTH = 6
FIG4_N_QUERIES = 5
FIG4_SAMPLES_PER_TIMESTAMP = 5

#: Coarse, semantically meaningful τ grid for MUNICH (see module docstring).
MUNICH_TAU_GRID: Tuple[float, ...] = tuple(
    round(0.1 * i, 1) for i in range(1, 10)
)

#: Technique order used in the result tables (paper legend order).
FIG4_TECHNIQUES = ("MUNICH", "DUST", "PROUD", "Euclidean")


def _fig4_dataset(scale: Scale, seed: int):
    """The truncated Gun Point workload at the scale's series budget."""
    return dataset_for_scale(
        "GunPoint",
        Scale(
            name=scale.name,
            n_series=min(FIG4_N_SERIES, scale.n_series),
            series_length=FIG4_LENGTH,
            n_queries=FIG4_N_QUERIES,
            sigmas=scale.sigmas,
            dataset_names=("GunPoint",),
        ),
        seed,
    )


def _design_sigma(scale: Scale) -> float:
    """The σ at which the fixed τ values are tuned (second grid point)."""
    sigmas = scale.sigmas
    return sigmas[1] if len(sigmas) > 1 else sigmas[0]


def _tune_taus(exact, family: str, scale: Scale, seed: int) -> Dict[str, float]:
    """One optimal-τ search per probabilistic technique at the design σ."""
    scenario = ConstantScenario(family, _design_sigma(scale))
    munich_run = run_similarity_experiment(
        exact,
        scenario,
        [MunichTechnique(Munich(n_bins=1024))],
        n_queries=FIG4_N_QUERIES,
        seed=seed,
        munich_samples=FIG4_SAMPLES_PER_TIMESTAMP,
        tau_grid=MUNICH_TAU_GRID,
    )
    proud_run = run_similarity_experiment(
        exact,
        scenario,
        [ProudTechnique(assumed_std=scenario.proud_std)],
        n_queries=FIG4_N_QUERIES,
        seed=seed,
        tau_grid=DEFAULT_TAU_GRID,
    )
    return {
        "MUNICH": munich_run.techniques["MUNICH"].tau,
        "PROUD": proud_run.techniques["PROUD"].tau,
    }


def run_figure4(
    scale: Optional[Scale] = None, seed: int = EXPERIMENT_SEED
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Run Figure 4: ``{family: {sigma: {technique: mean F1}}}``."""
    scale = scale if scale is not None else get_scale()
    exact = _fig4_dataset(scale, seed)
    results: Dict[str, Dict[float, Dict[str, float]]] = {}
    for family in PAPER_FAMILIES:
        taus = _tune_taus(exact, family, scale, seed)
        per_sigma: Dict[float, Dict[str, float]] = {}
        for sigma in scale.sigmas:
            scenario = ConstantScenario(family, sigma)
            munich_result = run_similarity_experiment(
                exact,
                scenario,
                [MunichTechnique(Munich(n_bins=1024))],
                n_queries=FIG4_N_QUERIES,
                seed=seed,
                munich_samples=FIG4_SAMPLES_PER_TIMESTAMP,
                fixed_tau=taus["MUNICH"],
            )
            proud_result = run_similarity_experiment(
                exact,
                scenario,
                [ProudTechnique(assumed_std=scenario.proud_std)],
                n_queries=FIG4_N_QUERIES,
                seed=seed,
                fixed_tau=taus["PROUD"],
            )
            others_result = run_similarity_experiment(
                exact,
                scenario,
                [DustTechnique(), EuclideanTechnique()],
                n_queries=FIG4_N_QUERIES,
                seed=seed,
            )
            per_sigma[sigma] = {
                "MUNICH": munich_result.techniques["MUNICH"].f1().mean,
                "DUST": others_result.techniques["DUST"].f1().mean,
                "PROUD": proud_result.techniques["PROUD"].f1().mean,
                "Euclidean": others_result.techniques["Euclidean"].f1().mean,
            }
        results[family] = per_sigma
    return results


def format_figure4(results: Dict[str, Dict[float, Dict[str, float]]]) -> str:
    """Render the three Figure 4 panels as text tables."""
    panels = []
    for family, per_sigma in results.items():
        sigmas = list(per_sigma)
        series = {
            name: [per_sigma[s][name] for s in sigmas]
            for name in FIG4_TECHNIQUES
        }
        panels.append(
            format_series_table(
                f"Figure 4 ({family} error distribution) — F1, "
                f"Gun Point truncated",
                "sigma",
                sigmas,
                series,
            )
        )
    return "\n\n".join(panels)
