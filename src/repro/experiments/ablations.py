"""Ablation studies for the design choices DESIGN.md calls out.

Five ablations, each backing one implementation decision with data:

* :func:`munich_evaluator_ablation` — the exact convolution evaluator vs
  the definitional naive enumeration vs Monte Carlo: agreement and cost
  (justifies using convolution as MUNICH's default).
* :func:`dust_table_ablation` — DUST lookup-table resolution vs the
  normal closed form: accuracy and build time (justifies the 2048-point
  default).
* :func:`tail_workaround_ablation` — DUST on uniform errors with and
  without the paper's tail workaround (explains the Figure 5 σ=0.2 dip).
* :func:`proud_synopsis_ablation` — PROUD full vs Haar-synopsis mode:
  accuracy and time per query (the paper's Section 4.3 remark).
* :func:`tau_sensitivity_study` — MUNICH's F1 across σ for several fixed
  τ values (the brittleness behind Figure 4's collapse; Section 6's
  "considerable impact" of τ).
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

import numpy as np

from ..core.rng import spawn
from ..distributions import NormalError
from ..dust.tables import DustTable
from ..evaluation.harness import run_similarity_experiment
from ..munich.exact import convolved_probability, sampled_probability
from ..munich.naive import naive_probability
from ..munich.query import Munich
from ..perturbation.scenarios import ConstantScenario
from ..queries.techniques import (
    DustTechnique,
    EuclideanTechnique,
    MunichTechnique,
    ProudTechnique,
)
from .config import EXPERIMENT_SEED, Scale, get_scale
from .runner import dataset_for_scale


# ---------------------------------------------------------------------------
# MUNICH evaluator ablation
# ---------------------------------------------------------------------------

def munich_evaluator_ablation(
    seed: int = EXPERIMENT_SEED,
    n_pairs: int = 12,
    length: int = 4,
    samples: int = 3,
    sigma: float = 0.5,
) -> Dict[str, Dict[str, float]]:
    """Compare MUNICH probability evaluators against exhaustive truth.

    Returns per-evaluator ``{"max_error": ..., "seconds": ...}`` over a
    grid of random series pairs and thresholds.
    """
    from ..core.series import TimeSeries
    from ..core.uncertain import ErrorModel
    from ..perturbation.perturb import perturb_multisample

    rng = spawn(seed, "munich-ablation")
    model = ErrorModel.constant(NormalError(sigma), length)
    pairs = []
    for _ in range(n_pairs):
        base_x = TimeSeries(rng.normal(size=length))
        base_y = TimeSeries(rng.normal(size=length))
        pairs.append(
            (
                perturb_multisample(base_x, model, samples, rng),
                perturb_multisample(base_y, model, samples, rng),
            )
        )
    epsilons = (0.5, 1.0, 2.0, 4.0)

    def evaluate(evaluator) -> Dict[str, float]:
        started = time.perf_counter()
        errors = []
        for x, y in pairs:
            for epsilon in epsilons:
                truth = naive_probability(x, y, epsilon)
                errors.append(abs(evaluator(x, y, epsilon) - truth))
        return {
            "max_error": float(np.max(errors)),
            "seconds": time.perf_counter() - started,
        }

    return {
        "convolution(4096)": evaluate(
            lambda x, y, e: convolved_probability(x, y, e, n_bins=4096)
        ),
        "convolution(256)": evaluate(
            lambda x, y, e: convolved_probability(x, y, e, n_bins=256)
        ),
        "montecarlo(20k)": evaluate(
            lambda x, y, e: sampled_probability(
                x, y, e, n_samples=20_000, rng=spawn(seed, "mc")
            )
        ),
    }


# ---------------------------------------------------------------------------
# DUST table resolution ablation
# ---------------------------------------------------------------------------

def dust_table_ablation(
    resolutions: Sequence[int] = (64, 256, 2048),
    std: float = 0.4,
) -> Dict[int, Dict[str, float]]:
    """Table resolution vs closed-form accuracy and build time.

    For normal errors ``dust(d) = d / sqrt(2(s²+s²))`` exactly; the table
    should converge to it as the grid densifies.
    """
    probe = np.linspace(0.0, 4.0, 801)
    exact = probe / np.sqrt(2.0 * (std * std + std * std))
    results: Dict[int, Dict[str, float]] = {}
    for n_points in resolutions:
        started = time.perf_counter()
        table = DustTable(NormalError(std), NormalError(std), n_points=n_points)
        build_seconds = time.perf_counter() - started
        approx = table.dust(probe)
        results[n_points] = {
            "max_error": float(np.max(np.abs(approx - exact))),
            "build_seconds": build_seconds,
        }
    return results


# ---------------------------------------------------------------------------
# Uniform-error tail workaround ablation
# ---------------------------------------------------------------------------

def tail_workaround_ablation(
    scale: Scale = None,
    seed: int = EXPERIMENT_SEED,
    sigma: float = 0.2,
    dataset_names: Sequence[str] = ("GunPoint", "CBF", "Coffee"),
) -> Dict[str, Dict[str, float]]:
    """DUST F1 under uniform errors, with vs without the tail workaround.

    The paper's Figure 5 shows DUST dipping ~10% at (uniform, σ=0.2)
    because φ degenerates to zero; the workaround mitigates but does not
    fully fix it.  Euclidean is included as the reference level.
    """
    scale = scale if scale is not None else get_scale()
    scenario = ConstantScenario("uniform", sigma)
    techniques = [
        EuclideanTechnique(),
        DustTechnique(tail_workaround=True),
        DustTechnique(tail_workaround=False),
    ]
    # Distinguish the two DUST variants in the result keys.
    techniques[1].name = "DUST(tails)"
    techniques[2].name = "DUST(no tails)"
    results: Dict[str, Dict[str, float]] = {}
    for name in dataset_names:
        exact = dataset_for_scale(name, scale, seed)
        run = run_similarity_experiment(
            exact, scenario, techniques,
            n_queries=min(scale.n_queries, 10),
            seed=spawn(seed, "tails", name),
        )
        results[name] = {
            technique.name: run.techniques[technique.name].f1().mean
            for technique in techniques
        }
    return results


# ---------------------------------------------------------------------------
# PROUD wavelet synopsis ablation
# ---------------------------------------------------------------------------

def proud_synopsis_ablation(
    scale: Scale = None,
    seed: int = EXPERIMENT_SEED,
    sigma: float = 0.6,
    dataset_name: str = "FaceAll",
    coefficient_counts: Sequence[int] = (8, 32, 0),
) -> Dict[str, Dict[str, float]]:
    """PROUD accuracy/time with Haar synopses of varying size.

    ``0`` in ``coefficient_counts`` means the full (no-synopsis) model.
    The paper's Section 4.3 remark: the synopsis brings PROUD's CPU time
    to Euclidean levels "while maintaining high accuracy".
    """
    scale = scale if scale is not None else get_scale()
    exact = dataset_for_scale(dataset_name, scale, seed)
    scenario = ConstantScenario("normal", sigma)
    results: Dict[str, Dict[str, float]] = {}
    for count in coefficient_counts:
        technique = ProudTechnique(
            assumed_std=sigma,
            synopsis_coefficients=count if count > 0 else None,
        )
        label = f"PROUD(k={count})" if count > 0 else "PROUD(full)"
        technique.name = label
        run = run_similarity_experiment(
            exact, scenario, [technique],
            n_queries=min(scale.n_queries, 10), seed=seed,
        )
        outcome = run.techniques[label]
        results[label] = {
            "f1": outcome.f1().mean,
            "ms_per_query": outcome.mean_query_seconds() * 1000.0,
        }
    return results


# ---------------------------------------------------------------------------
# Filter weighting ablation
# ---------------------------------------------------------------------------

def filter_weighting_ablation(
    scale: Scale = None,
    seed: int = EXPERIMENT_SEED,
    dataset_names: Sequence[str] = ("SwedishLeaf", "Adiac", "Beef", "OliveOil"),
) -> Dict[str, Dict[str, float]]:
    """Decompose UMA/UEMA's gains: windowing vs the ``1/s_j`` weighting.

    Four filters under the mixed-σ normal scenario: MA and EMA (windowing
    only) against UMA and UEMA (windowing + confidence weighting).  Under
    *constant* σ the weighting is a no-op by construction; under mixed σ
    it should add on top of plain averaging — this ablation measures how
    much.  Euclidean (no filter at all) anchors the scale.
    """
    from ..distances.filtered import FilteredEuclidean
    from ..perturbation.scenarios import paper_mixed_scenario
    from ..queries.techniques import FilteredTechnique

    scale = scale if scale is not None else get_scale()
    scenario = paper_mixed_scenario("normal")
    variants = {
        "Euclidean": None,
        "MA(w=2)": FilteredEuclidean("ma", window=2),
        "EMA(w=2,λ=1)": FilteredEuclidean("ema", window=2, decay=1.0),
        "UMA(w=2)": FilteredEuclidean("uma", window=2),
        "UEMA(w=2,λ=1)": FilteredEuclidean("uema", window=2, decay=1.0),
    }

    def factory(_scenario):
        techniques = [EuclideanTechnique()]
        for filtered in variants.values():
            if filtered is not None:
                technique = FilteredTechnique(filtered)
                techniques.append(technique)
        return techniques

    results: Dict[str, Dict[str, float]] = {}
    for name in dataset_names:
        exact = dataset_for_scale(name, scale, seed)
        run = run_similarity_experiment(
            exact, scenario, factory(scenario),
            n_queries=min(scale.n_queries, 10),
            seed=spawn(seed, "weighting", name),
        )
        row: Dict[str, float] = {}
        for label, filtered in variants.items():
            key = "Euclidean" if filtered is None else filtered.name
            row[label] = run.techniques[key].f1().mean
        results[name] = row
    return results


# ---------------------------------------------------------------------------
# τ sensitivity study
# ---------------------------------------------------------------------------

def tau_sensitivity_study(
    seed: int = EXPERIMENT_SEED,
    taus: Sequence[float] = (0.1, 0.3, 0.6, 0.9),
    sigmas: Sequence[float] = (0.2, 0.6, 1.4),
    n_series: int = 40,
) -> Dict[float, Dict[float, float]]:
    """``{tau: {sigma: MUNICH F1}}`` on the Figure 4 workload.

    Shows that no single τ works across σ — the brittleness that makes
    the paper call τ selection "cumbersome" (Section 6).
    """
    scale = Scale(
        name="tau-study",
        n_series=n_series,
        series_length=6,
        n_queries=5,
        sigmas=tuple(sigmas),
        dataset_names=("GunPoint",),
    )
    exact = dataset_for_scale("GunPoint", scale, seed)
    results: Dict[float, Dict[float, float]] = {tau: {} for tau in taus}
    for sigma in sigmas:
        scenario = ConstantScenario("normal", sigma)
        for tau in taus:
            run = run_similarity_experiment(
                exact, scenario,
                [MunichTechnique(Munich(n_bins=512))],
                n_queries=5, seed=seed, munich_samples=5, fixed_tau=tau,
            )
            results[tau][sigma] = run.techniques["MUNICH"].f1().mean
    return results


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def format_ablation(title: str, rows: Dict[str, Dict[str, float]]) -> str:
    """Render an ablation's nested dict as an aligned table."""
    if not rows:
        return title
    columns = list(next(iter(rows.values())))
    label_width = max(len(str(key)) + 2 for key in rows)
    width = max(14, *(len(c) + 2 for c in columns))
    lines = [title]
    lines.append(
        " " * label_width + "".join(f"{c:>{width}}" for c in columns)
    )
    for key, values in rows.items():
        cells = "".join(
            f"{values[c]:>{width}.4f}" if isinstance(values[c], float)
            else f"{values[c]:>{width}}"
            for c in columns
        )
        lines.append(f"{str(key):<{label_width}}{cells}")
    return "\n".join(lines)
