"""Figures 6 and 7: precision & recall vs σ for PROUD and DUST.

Paper Section 4.2.2: across error families, "recall always remains
relatively high [...] On the contrary, precision is heavily affected,
decreasing from 70% to a mere 16% as standard deviation increases from
0.2 to 2" — i.e. growing uncertainty mostly manufactures false positives
in the result sets.  DUST shows "slightly better precision, but lower
recall" than PROUD.

Both figures are views over the same σ sweeps Figure 5 runs (memoized in
:mod:`repro.experiments.runner`), so regenerating all three costs one
sweep.
"""

from __future__ import annotations

from typing import Dict

from ..distributions import PAPER_FAMILIES
from .config import EXPERIMENT_SEED, Scale, get_scale
from .report import format_series_table
from .runner import averaged_metric, sigma_sweep


def _precision_recall_curves(
    technique_name: str, scale: Scale, seed: int
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """``{metric: {family: {sigma: value}}}`` for one technique."""
    curves: Dict[str, Dict[str, Dict[float, float]]] = {
        "precision": {},
        "recall": {},
    }
    for family in PAPER_FAMILIES:
        sweep = sigma_sweep(scale, family, seed=seed)
        for metric in ("precision", "recall"):
            curves[metric][family] = {
                sigma: averaged_metric(per_dataset, technique_name, metric)
                for sigma, per_dataset in sweep.items()
            }
    return curves


def run_figure6(
    scale: Scale = None, seed: int = EXPERIMENT_SEED
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Figure 6: PROUD precision (a) and recall (b) per error family."""
    scale = scale if scale is not None else get_scale()
    return _precision_recall_curves("PROUD", scale, seed)


def run_figure7(
    scale: Scale = None, seed: int = EXPERIMENT_SEED
) -> Dict[str, Dict[str, Dict[float, float]]]:
    """Figure 7: DUST precision (a) and recall (b) per error family."""
    scale = scale if scale is not None else get_scale()
    return _precision_recall_curves("DUST", scale, seed)


def format_precision_recall(
    figure_name: str,
    technique_name: str,
    curves: Dict[str, Dict[str, Dict[float, float]]],
) -> str:
    """Render a Figure 6/7-style pair of panels as text tables."""
    panels = []
    for metric in ("precision", "recall"):
        per_family = curves[metric]
        sigmas = list(next(iter(per_family.values())))
        series = {
            family: [per_family[family][s] for s in sigmas]
            for family in per_family
        }
        panels.append(
            format_series_table(
                f"{figure_name} — {technique_name} {metric} vs error σ",
                "sigma",
                sigmas,
                series,
            )
        )
    return "\n\n".join(panels)
