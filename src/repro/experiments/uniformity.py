"""The Section 4.1.1 uniformity check.

"Since DUST requires to know the distribution of values of the time
series, and additionally makes the assumption that this distribution is
uniform, we tested the datasets to check if this assumption holds.
According to the Chi-square test, the hypothesis that the datasets follow
the uniform distribution was rejected (for all datasets) with confidence
level α = 0.01."

This experiment re-runs that test on every (synthetic) dataset.
"""

from __future__ import annotations

from typing import Dict

from ..stats.chisquare import ChiSquareResult, chi_square_uniformity_test
from .config import EXPERIMENT_SEED, Scale, get_scale
from .runner import dataset_for_scale

ALPHA = 0.01


def run_uniformity_check(
    scale: Scale = None, seed: int = EXPERIMENT_SEED
) -> Dict[str, ChiSquareResult]:
    """Chi-square uniformity test on every dataset's pooled values."""
    scale = scale if scale is not None else get_scale()
    results: Dict[str, ChiSquareResult] = {}
    for name in scale.dataset_names:
        collection = dataset_for_scale(name, scale, seed)
        values = collection.values_matrix().ravel()
        results[name] = chi_square_uniformity_test(values)
    return results


def format_uniformity_check(results: Dict[str, ChiSquareResult]) -> str:
    """Render the per-dataset test outcomes."""
    lines = [
        f"Section 4.1.1 — chi-square uniformity test (alpha = {ALPHA})",
        f"{'dataset':<20}{'statistic':>14}{'p-value':>12}{'rejected':>10}",
    ]
    for name, result in results.items():
        lines.append(
            f"{name:<20}{result.statistic:>14.1f}{result.p_value:>12.2e}"
            f"{str(result.rejects_uniformity(ALPHA)):>10}"
        )
    rejected = sum(r.rejects_uniformity(ALPHA) for r in results.values())
    lines.append(
        f"uniformity rejected on {rejected}/{len(results)} datasets "
        f"(paper: all 17)"
    )
    return "\n".join(lines)
