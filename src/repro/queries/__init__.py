"""Query framework: RQ / PRQ / top-k and the threshold-calibration protocol.

Collection-level scoring runs through the batch query engine
(:mod:`repro.queries.engine`): techniques expose vectorized
``distance_profile`` / ``probability_profile`` methods whose per-collection
materializations (values matrices, filtered matrices, error-model codes,
bounding intervals) are cached by :class:`~repro.queries.engine.QueryEngine`.

All-pairs workloads — every series a query, the paper's full protocol —
go through the declarative session API (:mod:`repro.queries.session`):
:class:`SimilaritySession` pins a collection, :class:`QuerySet` selects
queries and a technique, and the techniques' ``distance_matrix`` /
``probability_matrix`` kernels answer the whole ``(M, N)`` grid at once.
The free functions (``range_query``, ``knn_technique_query``, ...) remain
as thin shims over the same kernels.
"""

from __future__ import annotations

from .engine import (
    DEFAULT_MAX_COLLECTIONS,
    SHARED_ENGINE,
    CollectionMaterialization,
    QueryEngine,
)
from .index import (
    IndexStage,
    index_enabled,
    knn_candidate_thresholds,
    set_index_enabled,
)
from .knn import (
    euclidean_knn_table,
    knn_indices,
    knn_query,
    knn_table,
    knn_technique_query,
    sparse_knn_table,
)
from .parallel import (
    BACKENDS,
    ShardedExecutor,
    ShardPlan,
    local_topk_rows,
    merge_knn_rows,
    plan_blocks,
)
from .planner import (
    ADAPTIVE_MC_FIRST_FRACTION,
    POLICY_MODES,
    AdaptiveMCStage,
    BoundStage,
    ExplainReport,
    PlanExplanation,
    PlanPolicy,
    PlanStage,
    PruningStats,
    QueryPlan,
    RefineStage,
    StageEstimate,
    StageStats,
    adaptive_mc_schedule,
    clear_plan_cache,
    effective_index_enabled,
    get_default_policy,
    normalize_tau,
    plan_cache_size,
    sequential_mc_decision,
    sequential_mc_grid_decision,
    sequential_mc_verdict,
    set_default_policy,
)
from .range_query import (
    probabilistic_range_query,
    range_query,
    result_set_from_scores,
)
from .session import (
    InProcessBackend,
    KnnResult,
    MatrixResult,
    QuerySet,
    RangeResult,
    SessionConfig,
    SimilarityBackend,
    SimilaritySession,
)
from .techniques import (
    DustDtwTechnique,
    DustTechnique,
    EuclideanTechnique,
    FilteredTechnique,
    MunichDtwTechnique,
    MunichTechnique,
    ProudTechnique,
    Technique,
)
from .thresholds import (
    PAPER_K,
    QueryCalibration,
    calibrate_queries,
    select_query_indices,
    technique_epsilon,
)

__all__ = [
    "QueryEngine",
    "CollectionMaterialization",
    "SHARED_ENGINE",
    "DEFAULT_MAX_COLLECTIONS",
    "SimilaritySession",
    "SessionConfig",
    "QuerySet",
    "SimilarityBackend",
    "InProcessBackend",
    "ShardedExecutor",
    "ShardPlan",
    "plan_blocks",
    "merge_knn_rows",
    "local_topk_rows",
    "BACKENDS",
    "MatrixResult",
    "KnnResult",
    "RangeResult",
    "QueryPlan",
    "PlanStage",
    "IndexStage",
    "index_enabled",
    "set_index_enabled",
    "knn_candidate_thresholds",
    "BoundStage",
    "RefineStage",
    "AdaptiveMCStage",
    "PruningStats",
    "StageStats",
    "PlanPolicy",
    "PlanExplanation",
    "StageEstimate",
    "ExplainReport",
    "POLICY_MODES",
    "get_default_policy",
    "set_default_policy",
    "effective_index_enabled",
    "normalize_tau",
    "clear_plan_cache",
    "plan_cache_size",
    "ADAPTIVE_MC_FIRST_FRACTION",
    "adaptive_mc_schedule",
    "sequential_mc_decision",
    "sequential_mc_grid_decision",
    "sequential_mc_verdict",
    "Technique",
    "EuclideanTechnique",
    "DustTechnique",
    "DustDtwTechnique",
    "FilteredTechnique",
    "ProudTechnique",
    "MunichTechnique",
    "MunichDtwTechnique",
    "range_query",
    "probabilistic_range_query",
    "result_set_from_scores",
    "knn_indices",
    "knn_table",
    "sparse_knn_table",
    "knn_query",
    "knn_technique_query",
    "euclidean_knn_table",
    "QueryCalibration",
    "calibrate_queries",
    "technique_epsilon",
    "select_query_indices",
    "PAPER_K",
]
