"""Sharded parallel execution of all-pairs similarity workloads.

The full evaluation protocol is an ``(M, N)`` matrix workload, and a
:class:`~repro.queries.session.QuerySet` already names the exact block a
worker would own.  :class:`ShardedExecutor` takes that literally: it
splits the grid into row/column block shards, evaluates each shard with
the technique's own matrix kernel — in a ``multiprocessing`` pool or
serially — and reassembles the full result:

* **matrix** kernels return the block and the parent writes it into the
  ``(M, N)`` output at its ``[r0:r1, c0:c1]`` coordinates;
* **kNN** queries never materialize the full matrix: each column shard
  returns only its local top-``k`` candidates per row (global indices +
  scores) and the parent runs a global **stable-by-index merge** — ties
  broken by ascending candidate index, exactly
  :func:`repro.queries.knn.knn_table`'s rule, so sharded rankings match
  the single-process path bit for bit.

Backends
--------

``backend="process"`` runs shards on a ``multiprocessing`` pool.  One
pool is (re)built per ``(technique, queries, collection)`` binding and
reused across consecutive kernels on the same binding — the harness'
calibration + probability pair, for instance.  Workers receive the
technique and data once, through the pool initializer: under the default
``fork`` start method nothing is pickled at all, and under ``spawn`` a
:class:`~repro.core.mmapio.MappedCollection` travels as its manifest
path, so workers re-open the value matrices **zero-copy** off the map
and their per-process materialization caches warm from it.

``backend="serial"`` evaluates the same shard plan in-process — it is
the fallback for ``n_workers=1`` and for custom techniques that don't
pickle (auto-detected when ``backend`` is left ``None``), and it is what
makes shard-boundary behaviour testable without a pool.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from .engine import QueryEngine
from .knn import knn_indices
from .planner import PruningStats
from .techniques import Technique, _epsilon_vector

#: Recognized executor backends (``None`` = auto-detect).
BACKENDS = ("serial", "process")

#: Matrix kernel kinds the executor dispatches.
_MATRIX_KINDS = ("distance", "probability", "calibration")


def plan_blocks(total: int, block: int) -> List[Tuple[int, int]]:
    """Split ``[0, total)`` into consecutive ``(start, stop)`` blocks.

    The last block is short when ``total`` is not divisible by ``block``;
    ``total == 0`` yields no blocks (the empty-query-set degenerate case).
    """
    if block < 1:
        raise InvalidParameterError(f"block size must be >= 1, got {block}")
    return [
        (start, min(start + block, total))
        for start in range(0, total, block)
    ]


@dataclass(frozen=True)
class ShardPlan:
    """The row/column decomposition of one ``(M, N)`` workload."""

    row_blocks: Tuple[Tuple[int, int], ...]
    col_blocks: Tuple[Tuple[int, int], ...]

    @property
    def n_shards(self) -> int:
        """Total number of ``(row, col)`` shard tasks."""
        return len(self.row_blocks) * len(self.col_blocks)

    def shards(self):
        """Iterate ``(r0, r1, c0, c1)`` shard coordinates, row-major."""
        for r0, r1 in self.row_blocks:
            for c0, c1 in self.col_blocks:
                yield r0, r1, c0, c1


# ---------------------------------------------------------------------------
# Shard evaluation (shared by the serial backend and pool workers)
# ---------------------------------------------------------------------------


def _slice_items(sequence: Sequence, start: int, stop: int):
    """A ``[start, stop)`` sub-collection: mapped shard view or list slice."""
    shard = getattr(sequence, "shard", None)
    if shard is not None:
        return shard(start, stop)
    if isinstance(sequence, (list, tuple)):
        return sequence[start:stop]
    return [sequence[index] for index in range(start, stop)]


class _ShardComputer:
    """Evaluates shard tasks for one ``(technique, queries, collection)``.

    Lives once per worker process (module global, installed by the pool
    initializer) and once per serial run.  Sub-collection slices are
    cached by range so the technique's engine reuses one materialization
    per shard across every task that touches it, and a private
    :class:`QueryEngine` is attached around each kernel so shard
    materializations never evict entries of the caller's engine.
    """

    def __init__(self, technique: Technique, queries, collection) -> None:
        self.technique = technique
        self.queries = collection if queries is None else queries
        self.collection = collection
        self._row_slices: Dict[Tuple[int, int], Sequence] = {}
        self._col_slices: Dict[Tuple[int, int], Sequence] = {}
        self._engine = QueryEngine(max_collections=64)

    def _rows(self, r0: int, r1: int) -> Sequence:
        block = self._row_slices.get((r0, r1))
        if block is None:
            block = _slice_items(self.queries, r0, r1)
            self._row_slices[(r0, r1)] = block
        return block

    def _cols(self, c0: int, c1: int) -> Sequence:
        block = self._col_slices.get((c0, c1))
        if block is None:
            block = _slice_items(self.collection, c0, c1)
            self._col_slices[(c0, c1)] = block
        return block

    def matrix_block(
        self,
        kind: str,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        epsilon_block: Optional[np.ndarray],
        tau: Optional[float] = None,
        policy=None,
        knn_k: Optional[int] = None,
        exclude_block: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, PruningStats]:
        """One shard of the ``(M, N)`` matrix, shape ``(r1-r0, c1-c0)``.

        Executes the technique's query plan over the shard and returns
        the block together with the shard's
        :class:`~repro.queries.planner.PruningStats`; the caller merges
        shard stats into one workload-level record.  ``knn_k`` /
        ``exclude_block`` (shard-**local** column indices, ``-1`` for
        none) mark a top-k decision workload so the summarization index
        can prune within the shard.
        """
        rows = self._rows(r0, r1)
        cols = self._cols(c0, c1)
        technique = self.technique
        previous = technique._engine
        technique._engine = self._engine
        try:
            block, stats = technique.matrix_with_stats(
                kind,
                rows,
                cols,
                epsilon=epsilon_block,
                tau=tau,
                knn_k=knn_k,
                exclude=exclude_block,
                policy=policy,
            )
            return np.asarray(block), stats
        finally:
            technique._engine = previous

    def knn_block(
        self,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        k: int,
        exclude_block: Optional[np.ndarray],
        policy=None,
    ) -> Tuple[np.ndarray, np.ndarray, PruningStats]:
        """Per-row local top-``k`` of one column shard.

        Returns ``(indices, scores, stats)`` with shapes ``(r1-r0, k')``
        where ``k' = min(k, eligible columns)``; indices are **global**
        column positions, rows short of ``k'`` candidates are padded
        with ``-1`` / ``+inf`` (only possible when the shard is narrower
        than ``k`` after excluding a self-match).

        The shard matrix is computed in kNN decision mode: the
        technique's summarization index (when present) prunes cells
        beaten by at least ``k`` candidates *within this shard* — a
        strictly conservative subset of the global verdict, so the
        stable merge over shards is unchanged.  Pruned ``+inf`` cells
        are never selected (pruning only happens on rows keeping at
        least ``k`` finite eligible candidates).
        """
        width = c1 - c0
        local_exclude = None
        if exclude_block is not None:
            own = np.asarray(exclude_block, dtype=np.intp)
            local_exclude = np.where(
                (own >= c0) & (own < c1), own - c0, -1
            ).astype(np.intp)
        block, stats = self.matrix_block(
            "distance",
            r0,
            r1,
            c0,
            c1,
            None,
            policy=policy,
            knn_k=k,
            exclude_block=local_exclude,
        )
        indices, scores = local_topk_rows(block, k, local_exclude, c0)
        return indices, scores, stats


def local_topk_rows(
    block: np.ndarray,
    k: int,
    local_exclude: Optional[np.ndarray],
    col_offset: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row local top-``k`` of one column-shard score block.

    The shard half of the distributed kNN contract (the other half is
    :func:`merge_knn_rows`): returns ``(indices, scores)`` with shapes
    ``(rows, k')`` where ``k' = min(k, width)``; indices are **global**
    column positions (``col_offset`` added), rows short of ``k'``
    eligible candidates are padded with ``-1`` / ``+inf`` (only
    possible when the shard is narrower than ``k`` after excluding a
    self-match).  ``local_exclude`` holds one shard-local column to
    skip per row (``-1`` for none).  Shared by the in-process
    :class:`ShardedExecutor` shard tasks and the service tier's
    column-sliced daemon executions, so both scatter paths produce
    byte-identical shard candidates.
    """
    width = block.shape[1]
    limit = min(k, width)
    indices = np.full((block.shape[0], limit), -1, dtype=np.intp)
    scores = np.full((block.shape[0], limit), np.inf)
    for offset in range(block.shape[0]):
        skipped = None
        if local_exclude is not None and local_exclude[offset] >= 0:
            skipped = int(local_exclude[offset])
        take = min(limit, width - (1 if skipped is not None else 0))
        if take < 1:
            continue
        local = knn_indices(block[offset], take, exclude=skipped)
        indices[offset, :take] = np.asarray(local, dtype=np.intp) + col_offset
        scores[offset, :take] = block[offset, local]
    return indices, scores


# -- pool worker plumbing ----------------------------------------------------

_WORKER: Optional[_ShardComputer] = None


def _worker_init(technique: Technique, queries, collection) -> None:
    """Pool initializer: bind this process' shard computer."""
    global _WORKER
    _WORKER = _ShardComputer(technique, queries, collection)


def _worker_matrix(task) -> Tuple[int, int, np.ndarray, PruningStats]:
    kind, r0, r1, c0, c1, epsilon_block, tau, policy = task
    block, stats = _WORKER.matrix_block(
        kind, r0, r1, c0, c1, epsilon_block, tau, policy
    )
    return r0, c0, block, stats


def _worker_knn(task) -> Tuple[int, np.ndarray, np.ndarray, PruningStats]:
    r0, r1, c0, c1, k, exclude_block, policy = task
    indices, scores, stats = _WORKER.knn_block(
        r0, r1, c0, c1, k, exclude_block, policy
    )
    return r0, indices, scores, stats


def merge_knn_rows(
    n_queries: int,
    k: int,
    shards: Sequence[Tuple[int, np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Global stable-by-index merge of per-shard top-``k`` candidates.

    Candidates from every column shard are pooled per query row and
    ordered by ``(score, global index)`` — the same tie-breaking rule as
    :func:`repro.queries.knn.knn_indices`' stable argsort, so the merged
    ranking is identical to a single-process top-``k`` of the full row.
    Each shard entry is ``(row_offset, indices, scores)`` with
    **global** candidate indices and ``-1`` / ``+inf`` padding for rows
    short of candidates (narrow shards).  This is the single merge rule
    of the system: the in-process :class:`ShardedExecutor` and the
    distributed :class:`~repro.service.cluster.ClusterCoordinator` both
    reassemble through it.
    """
    index_pool: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
    score_pool: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
    for r0, indices, scores in shards:
        for offset in range(indices.shape[0]):
            index_pool[r0 + offset].append(indices[offset])
            score_pool[r0 + offset].append(scores[offset])
    merged_indices = np.empty((n_queries, k), dtype=np.intp)
    merged_scores = np.empty((n_queries, k))
    for row in range(n_queries):
        candidates = np.concatenate(index_pool[row])
        scores = np.concatenate(score_pool[row])
        real = candidates >= 0  # drop narrow-shard padding
        candidates = candidates[real]
        scores = scores[real]
        if candidates.size < k:
            raise InvalidParameterError(
                f"k={k} exceeds the {candidates.size} eligible candidates "
                f"of query row {row}"
            )
        order = np.lexsort((candidates, scores))[:k]
        merged_indices[row] = candidates[order]
        merged_scores[row] = scores[order]
    return merged_indices, merged_scores


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def _is_picklable(value) -> bool:
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


class ShardedExecutor:
    """Shard an ``(M, N)`` workload across a worker pool and reassemble.

    Parameters
    ----------
    n_workers:
        Worker processes; ``None`` means ``os.cpu_count()``.  ``1``
        selects the serial backend.
    backend:
        ``"process"``, ``"serial"``, or ``None`` to auto-select:
        process when ``n_workers > 1`` and the technique/collection
        pickle, serial otherwise (custom in-memory techniques keep
        working, just without parallelism).
    row_block / col_block:
        Shard heights/widths.  Defaults split query rows roughly two
        blocks per worker and keep columns whole (row sharding
        parallelizes matrix kernels without shrinking the GEMMs); kNN
        additionally shards columns so the full matrix is never
        materialized.  Tests and out-of-core runs pin both explicitly.
    mp_context:
        ``multiprocessing`` start method (default: the platform default,
        ``fork`` on Linux — zero-copy worker startup).
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        row_block: Optional[int] = None,
        col_block: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if backend is not None and backend not in BACKENDS:
            raise InvalidParameterError(
                f"backend must be one of {BACKENDS} or None, got {backend!r}"
            )
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if row_block is not None and row_block < 1:
            raise InvalidParameterError(
                f"row_block must be >= 1, got {row_block}"
            )
        if col_block is not None and col_block < 1:
            raise InvalidParameterError(
                f"col_block must be >= 1, got {col_block}"
            )
        self.n_workers = int(n_workers)
        self.backend = backend
        self.row_block = row_block
        self.col_block = col_block
        self.mp_context = mp_context
        self._pool = None
        self._close_lock = threading.Lock()
        # Strong reference to the (technique, queries, collection) the
        # pool workers were initialized with: identity comparison stays
        # sound (no id recycling) for as long as the pool is alive.
        self._pool_binding = None
        self._serial_binding = None
        self._serial_computer: Optional[_ShardComputer] = None
        self._backend_binding = None
        self._resolved_backend: Optional[str] = None

    # -- planning ------------------------------------------------------------

    @staticmethod
    def _blocks_per_worker(cpus: int) -> int:
        """Row blocks per worker, scaled by the machine's CPU count.

        On one core this is exactly the PR 3 heuristic (2 blocks per
        worker — parallel slack without shrinking each kernel call
        below NumPy-efficient sizes); on real multi-core hardware the
        shards get progressively finer (+1 per doubling, capped at 8)
        so stragglers rebalance across the pool instead of serializing
        its tail.
        """
        if cpus <= 1:
            return 2
        return min(8, 2 + (cpus - 1).bit_length())

    def plan(
        self, n_queries: int, n_candidates: int, for_knn: bool = False
    ) -> ShardPlan:
        """The shard decomposition for an ``(M, N)`` workload.

        Default block sizes are CPU-count-aware (see
        :meth:`_blocks_per_worker`); the chosen plan is logged into the
        workload's :class:`~repro.queries.planner.PruningStats` by
        :meth:`matrix_with_stats` / :meth:`knn_with_stats`.
        """
        cpus = os.cpu_count() or 1
        row_block = self.row_block
        if row_block is None:
            slack = self._blocks_per_worker(cpus) * self.n_workers
            row_block = max(1, math.ceil(n_queries / slack))
        col_block = self.col_block
        if col_block is None:
            if for_knn and self.n_workers > 1:
                # Column shards bound the kNN working set: each shard
                # returns k candidates per row instead of its full block.
                col_block = max(1, math.ceil(n_candidates / self.n_workers))
            else:
                col_block = max(1, n_candidates)
        return ShardPlan(
            tuple(plan_blocks(n_queries, row_block)),
            tuple(plan_blocks(n_candidates, col_block)),
        )

    def _plan_log(self, plan: ShardPlan, backend: str) -> Dict:
        """The executor-plan record logged into merged ``PruningStats``."""
        row_sizes = [stop - start for start, stop in plan.row_blocks]
        col_sizes = [stop - start for start, stop in plan.col_blocks]
        return {
            "n_workers": self.n_workers,
            "backend": backend,
            "cpu_count": os.cpu_count() or 1,
            "row_block": max(row_sizes) if row_sizes else 0,
            "col_block": max(col_sizes) if col_sizes else 0,
            "n_shards": plan.n_shards,
        }

    def _resolve_backend(self, technique: Technique, queries, collection):
        if self.backend == "serial" or self.n_workers == 1:
            return "serial"
        if self.backend == "process":
            return "process"
        # The auto-detect probe serializes the whole binding once, which
        # is not free for large in-memory collections — cache the verdict
        # per binding (strong refs keep identity comparison sound).
        if self._same_binding(
            self._backend_binding, technique, queries, collection
        ):
            return self._resolved_backend
        resolved = (
            "process"
            if _is_picklable((technique, queries, collection))
            else "serial"
        )
        self._backend_binding = (technique, queries, collection)
        self._resolved_backend = resolved
        return resolved

    # -- pool lifecycle ------------------------------------------------------

    @staticmethod
    def _same_binding(binding, technique, queries, collection) -> bool:
        return binding is not None and (
            binding[0] is technique
            and binding[1] is queries
            and binding[2] is collection
        )

    def _pool_for(self, technique: Technique, queries, collection):
        """A pool whose workers hold this exact binding (reused if so)."""
        if self._pool is not None and self._same_binding(
            self._pool_binding, technique, queries, collection
        ):
            return self._pool
        self.close()
        context = multiprocessing.get_context(self.mp_context)
        self._pool = context.Pool(
            processes=self.n_workers,
            initializer=_worker_init,
            initargs=(technique, queries, collection),
        )
        self._pool_binding = (technique, queries, collection)
        return self._pool

    def _computer_for(
        self, technique: Technique, queries, collection
    ) -> _ShardComputer:
        """The serial-backend shard computer (cached per binding)."""
        if self._serial_computer is not None and self._same_binding(
            self._serial_binding, technique, queries, collection
        ):
            return self._serial_computer
        self._serial_computer = _ShardComputer(technique, queries, collection)
        self._serial_binding = (technique, queries, collection)
        return self._serial_computer

    def close(self) -> None:
        """Shut down the worker pool and drop cached bindings.

        Idempotent and thread-safe: exactly one caller terminates the
        pool (the swap under ``_close_lock`` publishes ``None`` before
        anyone joins), so concurrent double-close never races the pool's
        own internals.
        """
        with self._close_lock:
            pool, self._pool = self._pool, None
            self._pool_binding = None
            self._serial_binding = None
            self._serial_computer = None
            self._backend_binding = None
            self._resolved_backend = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- kernels -------------------------------------------------------------

    def matrix(
        self,
        technique: Technique,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon=None,
    ) -> np.ndarray:
        """The full ``(M, N)`` matrix, assembled from shard blocks.

        ``kind`` is ``"distance"``, ``"probability"`` or
        ``"calibration"``; ``epsilon`` (scalar or per-query vector) is
        required for probability kind and forbidden otherwise.
        """
        return self.matrix_with_stats(
            technique, kind, queries, collection, epsilon
        )[0]

    def matrix_with_stats(
        self,
        technique: Technique,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon=None,
        tau: Optional[float] = None,
        policy=None,
    ) -> Tuple[np.ndarray, Optional[PruningStats]]:
        """:meth:`matrix` plus the merged per-shard ``PruningStats``.

        Every shard executes the technique's query plan; their stats
        are merged stage-by-stage and the executor's chosen shard plan
        (block sizes, worker count, CPU count) is logged alongside.
        ``tau`` forwards a decision threshold so adaptive Monte Carlo
        stages can stop early inside each shard.  For *distance* kind,
        ``epsilon`` optionally marks a decision-mode range workload —
        index-pruned cells come back ``+inf``, one shard at a time.
        """
        if kind not in _MATRIX_KINDS:
            raise InvalidParameterError(
                f"kind must be one of {_MATRIX_KINDS}, got {kind!r}"
            )
        n_queries = len(queries)
        n_candidates = len(collection)
        if kind == "probability":
            eps = _epsilon_vector(epsilon, n_queries)
        elif kind == "distance" and epsilon is not None:
            eps = _epsilon_vector(epsilon, n_queries)
        elif epsilon is not None:
            raise InvalidParameterError(
                f"{kind} matrices take no epsilon"
            )
        else:
            eps = None
        out = np.empty((n_queries, n_candidates))
        if n_queries == 0:
            return out, None
        plan = self.plan(n_queries, n_candidates)
        tasks = [
            (
                kind,
                r0,
                r1,
                c0,
                c1,
                None if eps is None else eps[r0:r1],
                tau,
                policy,
            )
            for r0, r1, c0, c1 in plan.shards()
        ]
        backend = self._resolve_backend(technique, queries, collection)
        if backend == "serial":
            computer = self._computer_for(technique, queries, collection)
            blocks = []
            for task in tasks:
                block, stats = computer.matrix_block(*task)
                blocks.append((task[1], task[3], block, stats))
        else:
            pool = self._pool_for(technique, queries, collection)
            blocks = pool.map(_worker_matrix, tasks)
        for r0, c0, block, _ in blocks:
            out[r0:r0 + block.shape[0], c0:c0 + block.shape[1]] = block
        merged = PruningStats.merge_shards(
            [stats for _, _, _, stats in blocks],
            n_queries,
            n_candidates,
            executor=self._plan_log(plan, backend),
        )
        return out, merged

    def knn(
        self,
        technique: Technique,
        queries: Sequence,
        collection: Sequence,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Row-wise top-``k`` without materializing the full matrix.

        Returns ``(indices, scores)``, both ``(M, k)``; ``exclude``
        optionally holds one collection position to skip per query row
        (``-1`` for none) — the self-match of all-pairs workloads.
        Rankings match :func:`repro.queries.knn.knn_table` exactly.
        """
        indices, scores, _ = self.knn_with_stats(
            technique, queries, collection, k, exclude=exclude
        )
        return indices, scores

    def knn_with_stats(
        self,
        technique: Technique,
        queries: Sequence,
        collection: Sequence,
        k: int,
        exclude: Optional[np.ndarray] = None,
        policy=None,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[PruningStats]]:
        """:meth:`knn` plus the merged per-shard ``PruningStats``."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        n_queries = len(queries)
        n_candidates = len(collection)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise InvalidParameterError(
                    f"exclude must hold one index per query row, got shape "
                    f"{exclude.shape} for {n_queries} rows"
                )
        excluding = exclude is not None and bool(np.any(exclude >= 0))
        if k > n_candidates - (1 if excluding else 0):
            raise InvalidParameterError(
                f"k={k} must be at most the number of eligible candidates "
                f"({n_candidates - (1 if excluding else 0)})"
            )
        if n_queries == 0:
            return (
                np.empty((0, k), dtype=np.intp),
                np.empty((0, k)),
                None,
            )
        plan = self.plan(n_queries, n_candidates, for_knn=True)
        tasks = [
            (
                r0,
                r1,
                c0,
                c1,
                k,
                None if exclude is None else exclude[r0:r1],
                policy,
            )
            for r0, r1, c0, c1 in plan.shards()
        ]
        backend = self._resolve_backend(technique, queries, collection)
        if backend == "serial":
            computer = self._computer_for(technique, queries, collection)
            shards = []
            for r0, r1, c0, c1, k_arg, exclude_block, task_policy in tasks:
                indices, scores, stats = computer.knn_block(
                    r0, r1, c0, c1, k_arg, exclude_block, task_policy
                )
                shards.append((r0, indices, scores, stats))
        else:
            pool = self._pool_for(technique, queries, collection)
            shards = pool.map(_worker_knn, tasks)
        merged_stats = PruningStats.merge_shards(
            [stats for _, _, _, stats in shards],
            n_queries,
            n_candidates,
            executor=self._plan_log(plan, backend),
        )
        indices, scores = merge_knn_rows(
            n_queries, k, [shard[:3] for shard in shards]
        )
        return indices, scores, merged_stats

    def __repr__(self) -> str:
        backend = self.backend if self.backend is not None else "auto"
        return (
            f"ShardedExecutor(n_workers={self.n_workers}, "
            f"backend={backend!r})"
        )
