"""The paper's threshold-calibration protocol (Section 4.1.2).

To compare techniques whose distances live on different scales, the paper
derives *equivalent thresholds* per query:

    "Given a query q and a dataset C, we identify the 10th nearest
    neighbor of q in C.  Let that be time series c.  We define ε_eucl as
    the Euclidean distance on the observations between q and c and ε_dust
    as the DUST distance between q and c.  This procedure is repeated for
    every query q."

Generalized here: the 10th nearest neighbor is found on the *exact* ground
truth data (which also defines the true answer set of exactly ``k``
series), and each technique's ε is its own
:meth:`~repro.queries.techniques.Technique.calibration_distance` between
the *perturbed* representations of ``q`` and ``c``.  Self-matches are
excluded throughout (a query is never its own neighbor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import InvalidParameterError
from .knn import euclidean_knn_table
from .techniques import Technique

#: The paper's ground-truth answer size ("they return exactly 10 time series").
PAPER_K = 10


@dataclass(frozen=True)
class QueryCalibration:
    """Ground truth and threshold anchor for one query.

    ``ground_truth`` is the set of truly similar series (the k nearest
    neighbors on exact data); ``anchor_index`` is the k-th of them — the
    series whose perturbed distance to the query defines each technique's ε.
    """

    query_index: int
    ground_truth: frozenset
    anchor_index: int


def calibrate_queries(
    exact_values: np.ndarray, k: int = PAPER_K
) -> List[QueryCalibration]:
    """Build :class:`QueryCalibration` for every series of a dataset.

    ``exact_values`` is the ``(N, n)`` matrix of ground-truth series; every
    series takes a turn as the query, exactly as in the paper's
    experiments.
    """
    table = euclidean_knn_table(exact_values, k)
    calibrations = []
    for query_index in range(table.shape[0]):
        neighbors = table[query_index]
        calibrations.append(
            QueryCalibration(
                query_index=query_index,
                ground_truth=frozenset(int(i) for i in neighbors),
                anchor_index=int(neighbors[-1]),
            )
        )
    return calibrations


def technique_epsilon(
    technique: Technique,
    perturbed: Sequence,
    calibration: QueryCalibration,
    profile: Optional[np.ndarray] = None,
) -> float:
    """This technique's ε for one query: its calibration distance between
    the perturbed query and the perturbed anchor (10th NN) series.

    When the caller has already computed the query's calibration profile
    (the batch vector of calibration distances to every collection series
    — for distance techniques that is the distance profile itself), pass
    it as ``profile`` and the anchor entry is read off directly instead of
    recomputing the pair.
    """
    if profile is not None:
        return float(profile[calibration.anchor_index])
    query = perturbed[calibration.query_index]
    anchor = perturbed[calibration.anchor_index]
    return technique.calibration_distance(query, anchor)


def select_query_indices(
    n_series: int, n_queries: int, rng: np.random.Generator
) -> np.ndarray:
    """Deterministic query subset: all series, or a random sample.

    The full-scale paper protocol uses every series as a query; reduced
    scales sample without replacement.
    """
    if n_queries <= 0:
        raise InvalidParameterError(f"n_queries must be >= 1, got {n_queries}")
    if n_queries >= n_series:
        return np.arange(n_series)
    return np.sort(rng.choice(n_series, size=n_queries, replace=False))
