"""Declarative similarity sessions: the all-pairs query surface.

The paper's full evaluation protocol (Section 4.1.2) makes *every* series
of a collection a query against all others — an ``(M, N)`` workload.  The
session API expresses that workload declaratively and answers it with the
techniques' batch-of-queries matrix kernels
(:meth:`~repro.queries.techniques.Technique.distance_matrix` /
``probability_matrix``) instead of ``M`` separate profile calls::

    session = SimilaritySession(collection)
    result = session.queries().using(DustTechnique()).knn(10)
    result.indices            # (M, k) rankings, stable tie-breaking
    result.per_query_seconds  # amortized kernel time

    profile = session.queries([3, 7]).using(EuclideanTechnique())
    matrix = profile.profile_matrix()          # MatrixResult, (2, N)
    in_range = profile.range(epsilon=4.0)      # RangeResult

    prq = session.queries().using(ProudTechnique(assumed_std=0.7))
    hits = prq.prob_range(epsilon=eps_vector, tau=0.4)

A :class:`SimilaritySession` pins one collection on one
:class:`~repro.queries.engine.QueryEngine` (the process-shared engine by
default), so every query set against it reuses the same materialization
matrices.  :class:`QuerySet` is an immutable fluent builder: ``queries()``
selects the query rows (default: every series — the full protocol),
``using()`` binds a technique, and the terminal verbs — ``knn``,
``range``, ``prob_range``, ``profile_matrix``, ``calibration_matrix`` —
run one matrix kernel and return structured result objects carrying
scores, rankings, and per-query timings.

Queries that *are* collection members (selected by index, by identity, or
by the all-series default) are tracked positionally so result sets and
rankings exclude the self-match, exactly like the free-function protocol.
"""

from __future__ import annotations

import abc
import dataclasses
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..core.deprecation import warn_once
from ..core.errors import InvalidParameterError, UnsupportedQueryError
from .engine import SHARED_ENGINE, QueryEngine
from .knn import knn_table, sparse_knn_table
from .parallel import ShardedExecutor
from .planner import (
    ExplainReport,
    PlanPolicy,
    PruningStats,
    effective_index_enabled,
    normalize_tau,
)
from .techniques import Technique, _epsilon_vector

#: Sentinel distinguishing "caller omitted the legacy keyword" from an
#: explicit ``None`` (which is meaningful for ``n_workers``/``backend``).
_UNSET: Any = object()


@dataclass(frozen=True)
class SessionConfig:
    """Every session knob in one declarative object.

    Consolidates what used to be loose :class:`SimilaritySession`
    keywords (``n_workers``, ``backend``, ``row_block``, ``col_block``)
    plus the :class:`~repro.queries.planner.PlanPolicy` that governs
    cost-based plan choice, so a deployment's execution shape is one
    value that can be stored, compared, and passed through ``connect()``
    unchanged.  The legacy keywords still work behind once-per-process
    :class:`DeprecationWarning` shims.

    ``n_workers=1`` keeps kernels in-process; ``> 1`` (or ``None`` for
    all cores) shards the ``(M, N)`` grid over a worker pool.
    ``backend`` (``"process"`` / ``"serial"``) forces the sharded path;
    ``row_block``/``col_block`` override the executor's shard sizes.
    ``policy=None`` defers to the process-wide default policy at query
    time.
    """

    n_workers: Optional[int] = 1
    backend: Optional[str] = None
    row_block: Optional[int] = None
    col_block: Optional[int] = None
    policy: Optional[PlanPolicy] = None

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1 (or None for all cores), got "
                f"{self.n_workers}"
            )
        if self.policy is not None and not isinstance(
            self.policy, PlanPolicy
        ):
            raise InvalidParameterError(
                f"policy must be a PlanPolicy, got "
                f"{type(self.policy).__name__}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this config shards kernels over a worker pool."""
        return (
            self.backend is not None
            or self.n_workers is None
            or self.n_workers > 1
        )


@dataclass(frozen=True)
class MatrixResult:
    """An ``(M, N)`` score matrix with its provenance and timing.

    ``kind`` is ``"distance"``, ``"probability"`` or ``"calibration"``;
    ``values[i, j]`` scores query ``i`` against collection series ``j``.
    ``query_positions[i]`` is query ``i``'s index in the collection, or
    ``-1`` when the query is not a member (no self-match to exclude).
    ``pruning_stats`` carries the executed query plan's filter-and-refine
    accounting — candidates decided per stage, refinements run, Monte
    Carlo samples evaluated, per-stage wall time (so bound-evaluation
    time is visible, not folded into an opaque total), and, on a
    parallel session, the executor's chosen shard plan.
    """

    technique_name: str
    kind: str
    values: np.ndarray
    query_positions: np.ndarray
    elapsed_seconds: float
    epsilons: Optional[np.ndarray] = None
    pruning_stats: Optional[PruningStats] = None

    @property
    def n_queries(self) -> int:
        """Number of query rows ``M``."""
        return int(self.values.shape[0])

    @property
    def n_candidates(self) -> int:
        """Number of collection series ``N``."""
        return int(self.values.shape[1])

    @property
    def per_query_seconds(self) -> float:
        """Amortized kernel seconds per query row."""
        return self.elapsed_seconds / max(self.n_queries, 1)

    def row(self, position: int) -> np.ndarray:
        """One query's score vector (aligned with the collection)."""
        return self.values[position]

    def top_k(self, k: int) -> "KnnResult":
        """Row-wise k-nearest rankings off this matrix (self excluded).

        Only meaningful for score matrices ordered ascending-is-closer
        (``distance`` / ``calibration`` kinds).
        """
        if self.kind == "probability":
            raise UnsupportedQueryError(
                "top-k requires a distance matrix; probability rankings "
                "depend on epsilon"
            )
        indices = knn_table(self.values, k, exclude=self.query_positions)
        return KnnResult(
            technique_name=self.technique_name,
            indices=indices,
            scores=np.take_along_axis(self.values, indices, axis=1),
            query_positions=self.query_positions,
            elapsed_seconds=self.elapsed_seconds,
            pruning_stats=self.pruning_stats,
        )

    def result_sets(self, threshold) -> List[np.ndarray]:
        """Per-query result sets at a scalar or per-query threshold.

        Distance/calibration matrices select ``score <= threshold``;
        probability matrices select ``score >= threshold``.  Self-matches
        are excluded.
        """
        cutoff = _epsilon_vector(threshold, self.n_queries)
        sets: List[np.ndarray] = []
        for position in range(self.n_queries):
            row = self.values[position]
            if self.kind == "probability":
                mask = row >= cutoff[position]
            else:
                mask = row <= cutoff[position]
            indices = np.flatnonzero(mask)
            own = self.query_positions[position]
            if own >= 0:
                indices = indices[indices != own]
            sets.append(indices)
        return sets

    def __repr__(self) -> str:
        return (
            f"MatrixResult({self.technique_name!r}, kind={self.kind!r}, "
            f"shape={self.values.shape}, "
            f"per_query={self.per_query_seconds * 1e3:.3f}ms)"
        )


@dataclass(frozen=True)
class KnnResult:
    """Row-wise k-nearest-neighbor rankings for a query set.

    ``failed_shards`` is empty on every single-host execution; a
    cluster backend running with ``allow_partial`` tags a degraded
    result with the endpoints whose shards contributed nothing, so a
    caller can tell a complete answer from a best-effort one.
    """

    technique_name: str
    indices: np.ndarray
    scores: np.ndarray
    query_positions: np.ndarray
    elapsed_seconds: float
    pruning_stats: Optional[PruningStats] = None
    failed_shards: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every shard contributed (always true single-host)."""
        return not self.failed_shards

    @property
    def n_queries(self) -> int:
        """Number of query rows ``M``."""
        return int(self.indices.shape[0])

    @property
    def k(self) -> int:
        """Neighbors per query."""
        return int(self.indices.shape[1])

    @property
    def per_query_seconds(self) -> float:
        """Amortized kernel seconds per query row."""
        return self.elapsed_seconds / max(self.n_queries, 1)

    def row(self, position: int) -> List[int]:
        """One query's ranked neighbor indices."""
        return [int(i) for i in self.indices[position]]

    def __repr__(self) -> str:
        return (
            f"KnnResult({self.technique_name!r}, n_queries={self.n_queries}, "
            f"k={self.k})"
        )


@dataclass(frozen=True)
class RangeResult:
    """Per-query range-query result sets (RQ / PRQ, Equations 1–2).

    ``failed_shards`` mirrors :attr:`KnnResult.failed_shards`: empty
    unless a cluster backend degraded to partial results.
    """

    technique_name: str
    kind: str
    matches: Tuple[np.ndarray, ...]
    epsilons: np.ndarray
    tau: Optional[float]
    query_positions: np.ndarray
    elapsed_seconds: float
    pruning_stats: Optional[PruningStats] = None
    failed_shards: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every shard contributed (always true single-host)."""
        return not self.failed_shards

    @property
    def n_queries(self) -> int:
        """Number of query rows ``M``."""
        return len(self.matches)

    @property
    def per_query_seconds(self) -> float:
        """Amortized kernel seconds per query row."""
        return self.elapsed_seconds / max(self.n_queries, 1)

    @property
    def result_sizes(self) -> np.ndarray:
        """``(M,)`` result-set cardinalities."""
        return np.array([len(found) for found in self.matches], dtype=np.intp)

    def sets(self) -> List[List[int]]:
        """Result sets as plain lists (free-function compatible)."""
        return [[int(i) for i in found] for found in self.matches]

    def __repr__(self) -> str:
        tau = f", tau={self.tau:g}" if self.tau is not None else ""
        return (
            f"RangeResult({self.technique_name!r}, n_queries="
            f"{self.n_queries}{tau})"
        )


class QuerySet:
    """A declarative batch of queries against a session's collection.

    Built by :meth:`SimilaritySession.queries`; immutable — ``using``
    returns a new query set bound to a technique, and the terminal verbs
    (``knn`` / ``range`` / ``prob_range`` / ``profile_matrix`` /
    ``calibration_matrix``) each validate locally and then execute
    through the session's :class:`SimilarityBackend`, so the same fluent
    chain runs unchanged in-process, against one daemon, or scattered
    across a cluster — with identical validation errors on all three.

    ``selector`` preserves *how* the query rows were selected (``("all",
    None)`` / ``("indices", [...])`` / ``("values", rows)``) so a remote
    backend can ship the selection in wire form instead of serializing
    resolved series objects.
    """

    __slots__ = (
        "_session",
        "_queries",
        "_positions",
        "_technique",
        "_selector",
        "_policy",
    )

    def __init__(
        self,
        session: "SimilaritySession",
        queries: Sequence,
        positions: np.ndarray,
        technique: Optional[Technique] = None,
        selector: Optional[Tuple[str, Any]] = None,
        policy: Optional[PlanPolicy] = None,
    ) -> None:
        self._session = session
        self._queries = queries
        self._positions = positions
        self._technique = technique
        self._selector = selector
        self._policy = policy

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def session(self) -> "SimilaritySession":
        """The session this query set runs against."""
        return self._session

    @property
    def technique(self) -> Optional[Technique]:
        """The bound technique, if any."""
        return self._technique

    @property
    def query_positions(self) -> np.ndarray:
        """``(M,)`` collection positions of the queries (``-1`` if outside)."""
        return self._positions.copy()

    @property
    def selector(self) -> Optional[Tuple[str, Any]]:
        """The wire-form selection, when built through ``queries()``."""
        return self._selector

    @property
    def policy(self) -> Optional[PlanPolicy]:
        """The governing plan policy: this set's, else the session's.

        ``None`` means the terminal verbs resolve the process-wide
        default policy at execution time.
        """
        if self._policy is not None:
            return self._policy
        return getattr(self._session, "policy", None)

    def using(self, technique: Technique) -> "QuerySet":
        """Bind a technique, returning a new query set."""
        if not isinstance(technique, Technique):
            raise InvalidParameterError(
                f"using() expects a Technique, got {type(technique).__name__}"
            )
        return QuerySet(
            self._session,
            self._queries,
            self._positions,
            technique,
            selector=self._selector,
            policy=self._policy,
        )

    def with_policy(self, policy: Optional[PlanPolicy]) -> "QuerySet":
        """Bind a :class:`~repro.queries.planner.PlanPolicy`.

        Returns a new query set whose terminal verbs plan under
        ``policy`` instead of the session's (or the process default);
        ``None`` clears a previous binding.  Accepted uniformly by
        every backend — the wire protocols ship the policy with the
        request.
        """
        if policy is not None and not isinstance(policy, PlanPolicy):
            raise InvalidParameterError(
                f"with_policy() expects a PlanPolicy or None, got "
                f"{type(policy).__name__}"
            )
        return QuerySet(
            self._session,
            self._queries,
            self._positions,
            self._technique,
            selector=self._selector,
            policy=policy,
        )

    # -- terminal verbs ----------------------------------------------------

    def profile_matrix(self, epsilon=None, tau=None) -> MatrixResult:
        """The raw ``(M, N)`` score matrix for this query set.

        Distance techniques return distances (no ``epsilon``);
        probabilistic techniques return match probabilities and require a
        scalar or per-query ``epsilon``.

        ``tau`` (probabilistic only) is an optional decision threshold —
        a scalar, or a sequence bracketing a whole τ *grid* — that lets
        adaptive Monte Carlo stages stop sampling as soon as every
        threshold's verdict is determined.  Cell values then remain
        exact probabilities where fully evaluated and a
        verdict-equivalent hit fraction where sampling stopped early:
        thresholding the matrix at any grid τ matches the full
        evaluation exactly.
        """
        technique = self._require_technique()
        if technique.kind == "distance":
            if epsilon is not None:
                raise InvalidParameterError(
                    f"{technique.name} is a distance technique; "
                    f"profile_matrix() takes no epsilon"
                )
            if tau is not None:
                raise InvalidParameterError(
                    f"{technique.name} is a distance technique; "
                    f"profile_matrix() takes no tau"
                )
            return self._session.backend.profile_matrix(self, None)
        if epsilon is None:
            raise InvalidParameterError(
                f"{technique.name} is probabilistic; profile_matrix() "
                f"requires epsilon (scalar or one per query)"
            )
        eps = _epsilon_vector(epsilon, len(self._queries))
        return self._session.backend.profile_matrix(
            self, eps, tau=normalize_tau(tau)
        )

    def calibration_matrix(self) -> MatrixResult:
        """The ``(M, N)`` ε-calibration matrix (10th-NN thresholds live on
        its rows: entry ``[i, anchor]`` is query ``i``'s ε)."""
        self._require_technique()
        return self._session.backend.calibration_matrix(self)

    def knn(self, k: int) -> KnnResult:
        """Row-wise k-nearest neighbors (distance techniques only).

        On a parallel session the rankings are computed shard-wise — each
        column shard contributes its local top-``k`` and the executor
        merges them stable-by-index — so the full matrix is never
        materialized; results are identical to the single-process path.
        """
        technique = self._require_technique()
        if technique.kind != "distance":
            raise UnsupportedQueryError(
                f"top-k requires a distance technique; {technique.name} is "
                f"probabilistic and its ranking depends on epsilon"
            )
        return self._session.backend.knn(self, int(k))

    def _local_knn(self, k: int) -> KnnResult:
        """The in-process kNN execution (post-validation)."""
        technique = self._require_technique()
        executor = self._session.executor
        if executor is None:
            if technique.index_segments is None or not (
                effective_index_enabled(self.policy)
            ):
                return self.profile_matrix().top_k(k)
            # Indexed path: the plan runs in kNN decision mode, so the
            # summarization index retires certain non-neighbors as +inf
            # before refinement, and the sparse top-k ranks only the
            # surviving candidates.  Rankings are identical to
            # profile_matrix().top_k(k) — the index prunes only cells
            # strictly beaten by >= k candidates.
            values, elapsed, stats = self._run_matrix("distance", knn_k=k)
            indices, scores = sparse_knn_table(
                values, k, exclude=self._positions
            )
            return KnnResult(
                technique_name=technique.name,
                indices=indices,
                scores=scores,
                query_positions=self._positions.copy(),
                elapsed_seconds=elapsed,
                pruning_stats=stats,
            )
        with self._session.bound(technique):
            started = time.perf_counter()
            indices, scores, stats = executor.knn_with_stats(
                technique,
                self._queries,
                self._session.collection,
                k,
                exclude=self._positions,
                policy=self.policy,
            )
            elapsed = time.perf_counter() - started
        return KnnResult(
            technique_name=technique.name,
            indices=indices,
            scores=scores,
            query_positions=self._positions.copy(),
            elapsed_seconds=elapsed,
            pruning_stats=stats,
        )

    def range(self, epsilon) -> RangeResult:
        """Per-query range results ``distance <= ε`` (Equation 1 batch).

        Because ``ε`` is known here, the plan runs in *decision* mode:
        techniques with a summarization index retire certain
        non-matches as ``+inf`` without refining them (``row <= ε``
        excludes them just the same), so only candidate cells pay for
        exact distances.  Match sets are identical to thresholding the
        full ``profile_matrix()``.
        """
        technique = self._require_technique()
        if technique.kind != "distance":
            raise UnsupportedQueryError(
                f"range() requires a distance technique; use prob_range() "
                f"for {technique.name}"
            )
        eps = _epsilon_vector(epsilon, len(self._queries))
        return self._session.backend.range(self, eps)

    def _local_range(self, eps: np.ndarray) -> RangeResult:
        """The in-process range execution (post-validation)."""
        technique = self._require_technique()
        values, elapsed, stats = self._run_matrix("distance", eps)
        result = self._matrix_result("distance", values, elapsed, stats, eps)
        return RangeResult(
            technique_name=technique.name,
            kind="distance",
            matches=tuple(result.result_sets(eps)),
            epsilons=eps,
            tau=None,
            query_positions=self._positions.copy(),
            elapsed_seconds=result.elapsed_seconds,
            pruning_stats=result.pruning_stats,
        )

    def prob_range(self, epsilon, tau: float) -> RangeResult:
        """Per-query probabilistic range results ``Pr(distance <= ε) >= τ``
        (Equation 2 batch; probabilistic techniques only).

        Because ``τ`` is known here, the technique's query plan runs in
        *decision* mode: Monte Carlo techniques (MUNICH / MUNICH-DTW
        with ``method="montecarlo"``) refine through the adaptive
        sample-size stage, which stops drawing as soon as the hit
        fraction is decided against ``τ``.  The resulting match sets
        are guaranteed identical to the fixed-sample path's.
        """
        technique = self._require_technique()
        if technique.kind != "probabilistic":
            raise UnsupportedQueryError(
                f"prob_range() requires a probabilistic technique; use "
                f"range() for {technique.name}"
            )
        if not 0.0 <= tau <= 1.0:
            raise InvalidParameterError(
                f"tau must be within [0, 1], got {tau}"
            )
        eps = _epsilon_vector(epsilon, len(self._queries))
        return self._session.backend.prob_range(self, eps, float(tau))

    def _local_prob_range(self, eps: np.ndarray, tau: float) -> RangeResult:
        """The in-process probabilistic-range execution (post-validation)."""
        technique = self._require_technique()
        values, elapsed, stats = self._run_matrix(
            "probability", eps, tau=float(tau)
        )
        result = self._matrix_result(
            "probability", values, elapsed, stats, eps
        )
        return RangeResult(
            technique_name=technique.name,
            kind="probabilistic",
            matches=tuple(result.result_sets(tau)),
            epsilons=result.epsilons,
            tau=float(tau),
            query_positions=self._positions.copy(),
            elapsed_seconds=result.elapsed_seconds,
            pruning_stats=result.pruning_stats,
        )

    def explain(self, k=None, epsilon=None, tau=None) -> ExplainReport:
        """Execute one workload and report *how* it was planned.

        Runs the verb the arguments select — ``k`` → :meth:`knn`,
        ``epsilon`` + ``tau`` → :meth:`prob_range`, ``epsilon`` alone →
        :meth:`range` (distance techniques) or a probability
        :meth:`profile_matrix`, neither → :meth:`profile_matrix` — and
        returns an :class:`~repro.queries.planner.ExplainReport`: the
        chosen plan, each stage's estimated vs. actual selectivity, and
        the chooser's rationale.  Identical across in-process, daemon,
        and cluster backends (shards merge their explanations).
        """
        if k is not None:
            if epsilon is not None or tau is not None:
                raise InvalidParameterError(
                    "explain(k=...) is a kNN workload; epsilon/tau do "
                    "not apply"
                )
            result = self.knn(int(k))
        elif tau is not None:
            if epsilon is None:
                raise InvalidParameterError(
                    "explain(tau=...) needs epsilon as well (a "
                    "probabilistic range workload)"
                )
            result = self.prob_range(epsilon, tau)
        elif epsilon is not None:
            technique = self._require_technique()
            if technique.kind == "distance":
                result = self.range(epsilon)
            else:
                result = self.profile_matrix(epsilon)
        else:
            result = self.profile_matrix()
        return ExplainReport.from_stats(result.pruning_stats)

    # -- plumbing ----------------------------------------------------------

    def _local_profile_matrix(
        self, eps: Optional[np.ndarray], tau=None
    ) -> MatrixResult:
        """The in-process matrix execution (post-validation)."""
        if eps is None:
            values, elapsed, stats = self._run_matrix("distance")
            return self._matrix_result("distance", values, elapsed, stats)
        values, elapsed, stats = self._run_matrix(
            "probability", eps, tau=tau
        )
        return self._matrix_result(
            "probability", values, elapsed, stats, eps
        )

    def _local_calibration_matrix(self) -> MatrixResult:
        """The in-process calibration execution (post-validation)."""
        values, elapsed, stats = self._run_matrix("calibration")
        return self._matrix_result("calibration", values, elapsed, stats)

    def _require_technique(self) -> Technique:
        if self._technique is None:
            raise InvalidParameterError(
                "no technique bound; chain .using(technique) first"
            )
        return self._technique

    def _run_matrix(self, kind: str, epsilon=None, tau=None, knn_k=None):
        """One timed ``(M, N)`` plan execution — sharded when the
        session is parallel, the technique's own plan otherwise.

        Returns ``(values, elapsed, pruning_stats)``; ``tau`` forwards
        the decision threshold so adaptive Monte Carlo stages can stop
        early, ``knn_k`` marks a top-k decision workload for the index
        stage (single-process path only — the sharded executor's kNN
        entry point threads its own per-shard thresholds).
        """
        technique = self._require_technique()
        executor = self._session.executor
        policy = self.policy
        with self._session.bound(technique):
            started = time.perf_counter()
            if executor is not None:
                values, stats = executor.matrix_with_stats(
                    technique,
                    kind,
                    self._queries,
                    self._session.collection,
                    epsilon,
                    tau=tau,
                    policy=policy,
                )
            else:
                values, stats = technique.matrix_with_stats(
                    kind,
                    self._queries,
                    self._session.collection,
                    epsilon=epsilon,
                    tau=tau,
                    knn_k=knn_k,
                    exclude=self._positions if knn_k is not None else None,
                    policy=policy,
                )
            elapsed = time.perf_counter() - started
        return np.asarray(values, dtype=np.float64), elapsed, stats

    def _matrix_result(
        self,
        kind: str,
        values: np.ndarray,
        elapsed: float,
        stats: Optional[PruningStats] = None,
        epsilons: Optional[np.ndarray] = None,
    ) -> MatrixResult:
        return MatrixResult(
            technique_name=self._require_technique().name,
            kind=kind,
            values=values,
            query_positions=self._positions.copy(),
            elapsed_seconds=elapsed,
            epsilons=epsilons,
            pruning_stats=stats,
        )

    def __repr__(self) -> str:
        bound = (
            self._technique.name if self._technique is not None else "<none>"
        )
        return f"QuerySet(n_queries={len(self)}, technique={bound})"


class SimilarityBackend(abc.ABC):
    """Where a :class:`QuerySet`'s validated verbs actually execute.

    The seam of the unified query surface: the fluent chain
    ``session.queries(...).using(technique).knn(k)`` validates locally
    and then hands itself to the session's backend, which may run the
    kernel in this process (:class:`InProcessBackend`), on one daemon
    (``repro.service.cluster.RemoteBackend``), or scattered across a
    shard fleet (``repro.service.cluster.ClusterBackend``).  Every
    backend returns the same :class:`KnnResult` / :class:`RangeResult`
    structures with populated :class:`~repro.queries.planner.
    PruningStats`, so callers never branch on deployment shape.
    """

    @abc.abstractmethod
    def knn(self, query_set: QuerySet, k: int) -> KnnResult:
        """Execute a validated kNN workload."""

    @abc.abstractmethod
    def range(self, query_set: QuerySet, eps: np.ndarray) -> RangeResult:
        """Execute a validated range workload (per-query ε vector)."""

    @abc.abstractmethod
    def prob_range(
        self, query_set: QuerySet, eps: np.ndarray, tau: float
    ) -> RangeResult:
        """Execute a validated probabilistic-range workload."""

    def profile_matrix(
        self, query_set: QuerySet, eps: Optional[np.ndarray], tau=None
    ) -> MatrixResult:
        """Full ``(M, N)`` matrix retrieval — in-process only by default.

        Remote backends deliberately refuse: an ``(M, N)`` float matrix
        is exactly the payload the scatter-gather protocol exists to
        avoid shipping.
        """
        raise UnsupportedQueryError(
            f"{type(self).__name__} does not serve full score matrices; "
            f"use knn()/range()/prob_range(), or open the collection "
            f"in-process for matrix work"
        )

    def calibration_matrix(self, query_set: QuerySet) -> MatrixResult:
        """ε-calibration matrix — in-process only by default."""
        raise UnsupportedQueryError(
            f"{type(self).__name__} does not serve calibration matrices; "
            f"open the collection in-process for calibration work"
        )

    def close(self) -> None:
        """Release backend resources (connections, pools). Idempotent."""


class InProcessBackend(SimilarityBackend):
    """Execute verbs through the session's own engine and kernels.

    The zero-indirection default: every verb calls straight back into
    the query set's local execution path, preserving the pre-backend
    behavior (and performance) of :class:`SimilaritySession` exactly.
    """

    def knn(self, query_set: QuerySet, k: int) -> KnnResult:
        return query_set._local_knn(k)

    def range(self, query_set: QuerySet, eps: np.ndarray) -> RangeResult:
        return query_set._local_range(eps)

    def prob_range(
        self, query_set: QuerySet, eps: np.ndarray, tau: float
    ) -> RangeResult:
        return query_set._local_prob_range(eps, tau)

    def profile_matrix(
        self, query_set: QuerySet, eps: Optional[np.ndarray], tau=None
    ) -> MatrixResult:
        return query_set._local_profile_matrix(eps, tau=tau)

    def calibration_matrix(self, query_set: QuerySet) -> MatrixResult:
        return query_set._local_calibration_matrix()

    def __repr__(self) -> str:
        return "InProcessBackend()"


class SimilaritySession:
    """One collection pinned on one query engine.

    Parameters
    ----------
    collection:
        The candidate series (a :class:`~repro.core.collection.Collection`
        or any sequence of series).  Materialized eagerly, so every query
        set against the session shares the same dense matrices.
    engine:
        The :class:`~repro.queries.engine.QueryEngine` to materialize on;
        defaults to the process-shared engine (techniques compared side by
        side reuse one values matrix).  Pass a private engine to isolate
        the session's caches.
    config:
        A :class:`SessionConfig` consolidating the execution knobs —
        worker count, executor backend, shard block sizes, and the
        session-level :class:`~repro.queries.planner.PlanPolicy`.
    policy:
        Shorthand for ``config`` with only the plan policy set (the
        common case); combining it with a ``config`` that also sets a
        policy is an error.

    The pre-config keywords (``n_workers``, ``backend``, ``row_block``,
    ``col_block``) are still accepted behind once-per-process
    :class:`DeprecationWarning` shims and fold into the effective
    config.

    Parallel sessions own a worker pool: call :meth:`close` (or use the
    session as a context manager) to release it deterministically.
    """

    __slots__ = (
        "_collection",
        "_engine",
        "_executor",
        "_parallel",
        "_backend",
        "_closed",
        "_close_lock",
        "_config",
    )

    def __init__(
        self,
        collection: Sequence,
        engine: Optional[QueryEngine] = None,
        n_workers: Optional[int] = _UNSET,
        backend: Optional[str] = _UNSET,
        row_block: Optional[int] = _UNSET,
        col_block: Optional[int] = _UNSET,
        *,
        config: Optional[SessionConfig] = None,
        policy: Optional[PlanPolicy] = None,
    ) -> None:
        if len(collection) == 0:
            raise InvalidParameterError(
                "a similarity session needs a non-empty collection"
            )
        config = self._effective_config(
            config, policy, n_workers, backend, row_block, col_block
        )
        self._collection = collection
        self._engine = engine if engine is not None else SHARED_ENGINE
        self._config = config
        self._parallel = config.parallel
        if self._parallel:
            self._executor = ShardedExecutor(
                n_workers=config.n_workers,
                backend=config.backend,
                row_block=config.row_block,
                col_block=config.col_block,
            )
        else:
            self._executor = None
        self._backend = InProcessBackend()
        self._closed = False
        self._close_lock = threading.Lock()
        self._engine.materialize(collection)

    @staticmethod
    def _effective_config(
        config: Optional[SessionConfig],
        policy: Optional[PlanPolicy],
        n_workers,
        backend,
        row_block,
        col_block,
    ) -> SessionConfig:
        """Fold legacy keywords + ``policy`` into one :class:`SessionConfig`.

        Each legacy keyword that was actually passed warns once per
        process and overrides the corresponding config field; mixing a
        legacy keyword with an explicit ``config`` is rejected so there
        is never a silent precedence question.
        """
        legacy = {
            name: value
            for name, value in (
                ("n_workers", n_workers),
                ("backend", backend),
                ("row_block", row_block),
                ("col_block", col_block),
            )
            if value is not _UNSET
        }
        if legacy and config is not None:
            raise InvalidParameterError(
                f"pass {'/'.join(sorted(legacy))} inside config=, not "
                f"alongside it"
            )
        for name in legacy:
            warn_once(
                f"session-kwarg:{name}",
                f"SimilaritySession({name}=...) is deprecated; pass "
                f"config=SessionConfig({name}=...) instead",
            )
        if config is None:
            config = SessionConfig(**legacy)
        if policy is not None:
            if config.policy is not None:
                raise InvalidParameterError(
                    "policy= conflicts with config.policy; set it in "
                    "one place"
                )
            config = dataclasses.replace(config, policy=policy)
        return config

    @property
    def config(self) -> SessionConfig:
        """The session's effective :class:`SessionConfig`."""
        return self._config

    @property
    def policy(self) -> Optional[PlanPolicy]:
        """The session-level plan policy (``None`` → process default)."""
        return self._config.policy

    @property
    def collection(self) -> Sequence:
        """The pinned candidate collection."""
        return self._collection

    @property
    def engine(self) -> QueryEngine:
        """The engine holding this session's materializations."""
        return self._engine

    @property
    def executor(self):
        """The session's :class:`ShardedExecutor` (``None`` single-process)."""
        return self._executor

    @property
    def backend(self) -> SimilarityBackend:
        """The :class:`SimilarityBackend` query sets execute against."""
        return self._backend

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has already run."""
        return self._closed

    def close(self) -> None:
        """Release the executor's worker pool (no-op single-process).

        Idempotent and safe under concurrent callers: the daemon's
        shutdown path may close a session from a signal handler while a
        draining request still holds a reference, so exactly one caller
        tears the pool down and every later (or simultaneous) call
        returns immediately instead of racing pool internals.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        if executor is not None:
            executor.close()

    def __enter__(self) -> "SimilaritySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._collection)

    def queries(self, queries: Optional[Sequence] = None) -> QuerySet:
        """Select the query rows of the workload.

        ``queries`` may be ``None`` (every collection series — the full
        protocol), a sequence of integer indices into the collection, or a
        sequence of series objects (members are recognized by identity so
        their self-matches are excluded from result sets and rankings).
        """
        if queries is None:
            positions = np.arange(len(self._collection), dtype=np.intp)
            return QuerySet(
                self, self._collection, positions, selector=("all", None)
            )
        items = list(queries)
        if not items:
            raise InvalidParameterError(
                "a query set must contain at least one query"
            )
        if all(isinstance(item, (int, np.integer)) for item in items):
            positions = np.asarray(items, dtype=np.intp)
            n_series = len(self._collection)
            if np.any(positions < 0) or np.any(positions >= n_series):
                raise InvalidParameterError(
                    f"query indices must be within [0, {n_series - 1}]"
                )
            selector = ("indices", [int(i) for i in positions])
            if positions.size == n_series and np.array_equal(
                positions, np.arange(n_series)
            ):
                # The full protocol by index: share the collection-side
                # materialization instead of building a duplicate stack.
                return QuerySet(
                    self, self._collection, positions, selector=selector
                )
            selected = [self._collection[int(i)] for i in positions]
            return QuerySet(self, selected, positions, selector=selector)
        membership = {
            id(item): index for index, item in enumerate(self._collection)
        }
        positions = np.fromiter(
            (membership.get(id(item), -1) for item in items),
            dtype=np.intp,
            count=len(items),
        )
        return QuerySet(self, items, positions)

    @contextmanager
    def bound(self, technique: Technique):
        """Attach this session's engine to ``technique`` for one kernel run."""
        previous = technique._engine
        technique._engine = self._engine
        try:
            yield technique
        finally:
            technique._engine = previous

    def materialization(self):
        """The collection's :class:`CollectionMaterialization` (pinned)."""
        return self._engine.materialize(self._collection)

    def __repr__(self) -> str:
        return (
            f"SimilaritySession(n_series={len(self)}, engine={self._engine!r})"
        )
