"""k-nearest-neighbor queries.

Used in two places: DUST-style top-k search (Section 3.3 — "DUST being a
distance measure, it can be used to answer top-k nearest neighbor
queries"), and the evaluation protocol's ground-truth construction (the
10 nearest neighbors under exact Euclidean define the true answer set).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import InvalidParameterError
from ..distances.base import Distance, distance_profile
from ..distances.lp import euclidean_matrix


def knn_indices(
    distances: np.ndarray, k: int, exclude: Optional[int] = None
) -> List[int]:
    """Indices of the ``k`` smallest entries of a distance vector.

    Ties are broken by candidate index (stable argsort), making ground
    truth deterministic and rankings reproducible across the profile and
    matrix query paths.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    distances = np.asarray(distances, dtype=np.float64)
    order = np.argsort(distances, kind="stable")
    result = []
    for index in order:
        if exclude is not None and index == exclude:
            continue
        result.append(int(index))
        if len(result) == k:
            break
    return result


def knn_table(
    matrix: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
) -> np.ndarray:
    """Row-wise top-k of an ``(M, N)`` score matrix, shape ``(M, k)``.

    Every row goes through :func:`knn_indices`, so matrix-path rankings
    agree bit-for-bit with profile-path rankings (same stable
    break-ties-by-index rule).  ``exclude`` optionally gives one index to
    skip per row (``-1`` for none) — the self-match column of all-pairs
    matrices.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    n_queries, n_candidates = matrix.shape
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise InvalidParameterError(
                f"exclude must hold one index per query row, got shape "
                f"{exclude.shape} for {n_queries} rows"
            )
    excluding = exclude is not None and bool(np.any(exclude >= 0))
    if k > n_candidates - (1 if excluding else 0):
        raise InvalidParameterError(
            f"k={k} must be at most the number of eligible candidates "
            f"({n_candidates - (1 if excluding else 0)})"
        )
    table = np.empty((n_queries, k), dtype=np.intp)
    for row in range(n_queries):
        skipped = None
        if exclude is not None and exclude[row] >= 0:
            skipped = int(exclude[row])
        table[row] = knn_indices(matrix[row], k, exclude=skipped)
    return table


def sparse_knn_table(
    matrix: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
) -> tuple:
    """Row-wise top-k of a score matrix whose pruned cells are ``+inf``.

    The summarization index records certain non-candidates as ``+inf``;
    ranking only each row's *finite* cells keeps the sort cost
    proportional to the kept candidate set instead of ``N``, while
    returning exactly :func:`knn_table`'s rankings
    (``np.flatnonzero`` walks columns in ascending order, so the stable
    break-ties-by-index rule is preserved).  Returns ``(indices,
    scores)``.  Rows must keep at least ``k`` eligible finite cells —
    the index stage's pruning-threshold guarantee.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    n_queries, n_candidates = matrix.shape
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise InvalidParameterError(
                f"exclude must hold one index per query row, got shape "
                f"{exclude.shape} for {n_queries} rows"
            )
    excluding = exclude is not None and bool(np.any(exclude >= 0))
    if k > n_candidates - (1 if excluding else 0):
        raise InvalidParameterError(
            f"k={k} must be at most the number of eligible candidates "
            f"({n_candidates - (1 if excluding else 0)})"
        )
    indices = np.empty((n_queries, k), dtype=np.intp)
    scores = np.empty((n_queries, k))
    for row in range(n_queries):
        row_values = matrix[row]
        skipped = None
        if exclude is not None and exclude[row] >= 0:
            skipped = int(exclude[row])
        finite = np.flatnonzero(np.isfinite(row_values))
        if finite.size == n_candidates:
            chosen = knn_indices(row_values, k, exclude=skipped)
        else:
            local_skip = None
            if skipped is not None:
                hit = int(np.searchsorted(finite, skipped))
                if hit < finite.size and finite[hit] == skipped:
                    local_skip = hit
            eligible = finite.size - (1 if local_skip is not None else 0)
            if eligible < k:
                raise InvalidParameterError(
                    f"k={k} exceeds the {eligible} finite candidates of "
                    f"row {row}; sparse top-k requires an admissibly "
                    f"pruned matrix"
                )
            local = knn_indices(row_values[finite], k, exclude=local_skip)
            chosen = [int(finite[i]) for i in local]
        indices[row] = chosen
        scores[row] = row_values[indices[row]]
    return indices, scores


#: Private engine for the free-function shims: their throwaway one-query
#: workloads must not churn identity-keyed entries through the process-
#: shared engine's LRU (evicting materializations that sessions rely on).
_PLANNER_ENGINE = None


def planner_query_set(technique, query, collection, exclude: Optional[int]):
    """A one-query planner-backed :class:`~repro.queries.session.QuerySet`.

    The execution seam shared by the legacy free functions: each builds a
    single-query set against a private-engine session and runs the same
    validated verb path (planner stages, pruning statistics, backend
    dispatch) as the fluent ``session.queries(...).using(...)`` chains.
    """
    from .engine import QueryEngine
    from .session import QuerySet, SimilaritySession

    global _PLANNER_ENGINE
    if _PLANNER_ENGINE is None:
        _PLANNER_ENGINE = QueryEngine(max_collections=4)
    session = SimilaritySession(collection, engine=_PLANNER_ENGINE)
    positions = np.asarray(
        [-1 if exclude is None else int(exclude)], dtype=np.intp
    )
    return QuerySet(session, [query], positions, technique)


def knn_query(
    distance: Distance,
    query_values: np.ndarray,
    collection_values: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> List[int]:
    """Top-k query under an arbitrary distance callable.

    Euclidean queries — the paper's certain-data baseline and the ground-
    truth measure — route through the planner-backed session path (same
    stable rankings, plus index pruning when enabled).  Other callables
    have no :class:`~repro.queries.techniques.Technique` wrapper and fall
    back to one vectorized :func:`~repro.distances.base.distance_profile`
    kernel.
    """
    from ..distances.lp import euclidean as _euclidean

    if distance is _euclidean:
        from .techniques import EuclideanTechnique

        matrix = np.atleast_2d(
            np.asarray(collection_values, dtype=np.float64)
        )
        return knn_technique_query(
            EuclideanTechnique(),
            np.asarray(query_values, dtype=np.float64),
            matrix,
            k,
            exclude=exclude,
        )
    distances = distance_profile(distance, query_values, collection_values)
    return knn_indices(distances, k, exclude=exclude)


def knn_technique_query(
    technique,
    query,
    collection: Sequence,
    k: int,
    exclude: Optional[int] = None,
) -> List[int]:
    """Top-k under a distance :class:`~repro.queries.techniques.Technique`.

    A shim over the session path: the query runs through the same planner
    verb as ``session.queries([...]).using(technique).knn(k)``, so free-
    function callers get identical rankings (stable break-ties-by-index)
    and the same index-stage pruning as the fluent surface.  Probabilistic
    techniques have no stable ranking (the paper's argument for not using
    top-k as the comparison task — Section 4.1.2), so this raises for
    them.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    eligible = len(collection) - (1 if exclude is not None else 0)
    if eligible < 1:
        return []
    query_set = planner_query_set(technique, query, collection, exclude)
    return query_set.knn(min(int(k), eligible)).row(0)


def euclidean_knn_table(values: np.ndarray, k: int) -> np.ndarray:
    """All-queries ground-truth table: for each row of ``values``, the ``k``
    nearest *other* rows under Euclidean distance, shape ``(N, k)``.

    This is the harness' bulk path for ground-truth construction; self-
    matches are excluded.  One vectorized stable argsort over the whole
    matrix — the diagonal is pushed past every finite distance, which
    yields exactly :func:`knn_table`'s break-ties-by-index rankings
    without its per-row loop.
    """
    matrix = np.atleast_2d(np.asarray(values, dtype=np.float64))
    n = matrix.shape[0]
    if k >= n:
        raise InvalidParameterError(
            f"k={k} must be smaller than the collection size {n}"
        )
    pairwise = euclidean_matrix(matrix, matrix)
    np.fill_diagonal(pairwise, np.inf)
    order = np.argsort(pairwise, axis=1, kind="stable")
    return order[:, :k]
