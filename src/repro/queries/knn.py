"""k-nearest-neighbor queries.

Used in two places: DUST-style top-k search (Section 3.3 — "DUST being a
distance measure, it can be used to answer top-k nearest neighbor
queries"), and the evaluation protocol's ground-truth construction (the
10 nearest neighbors under exact Euclidean define the true answer set).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import InvalidParameterError
from ..distances.base import Distance, distance_profile
from ..distances.lp import euclidean_matrix


def knn_indices(
    distances: np.ndarray, k: int, exclude: Optional[int] = None
) -> List[int]:
    """Indices of the ``k`` smallest entries of a distance vector.

    Ties are broken by candidate index (stable argsort), making ground
    truth deterministic and rankings reproducible across the profile and
    matrix query paths.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    distances = np.asarray(distances, dtype=np.float64)
    order = np.argsort(distances, kind="stable")
    result = []
    for index in order:
        if exclude is not None and index == exclude:
            continue
        result.append(int(index))
        if len(result) == k:
            break
    return result


def knn_table(
    matrix: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
) -> np.ndarray:
    """Row-wise top-k of an ``(M, N)`` score matrix, shape ``(M, k)``.

    Every row goes through :func:`knn_indices`, so matrix-path rankings
    agree bit-for-bit with profile-path rankings (same stable
    break-ties-by-index rule).  ``exclude`` optionally gives one index to
    skip per row (``-1`` for none) — the self-match column of all-pairs
    matrices.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    n_queries, n_candidates = matrix.shape
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise InvalidParameterError(
                f"exclude must hold one index per query row, got shape "
                f"{exclude.shape} for {n_queries} rows"
            )
    excluding = exclude is not None and bool(np.any(exclude >= 0))
    if k > n_candidates - (1 if excluding else 0):
        raise InvalidParameterError(
            f"k={k} must be at most the number of eligible candidates "
            f"({n_candidates - (1 if excluding else 0)})"
        )
    table = np.empty((n_queries, k), dtype=np.intp)
    for row in range(n_queries):
        skipped = None
        if exclude is not None and exclude[row] >= 0:
            skipped = int(exclude[row])
        table[row] = knn_indices(matrix[row], k, exclude=skipped)
    return table


def sparse_knn_table(
    matrix: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
) -> tuple:
    """Row-wise top-k of a score matrix whose pruned cells are ``+inf``.

    The summarization index records certain non-candidates as ``+inf``;
    ranking only each row's *finite* cells keeps the sort cost
    proportional to the kept candidate set instead of ``N``, while
    returning exactly :func:`knn_table`'s rankings
    (``np.flatnonzero`` walks columns in ascending order, so the stable
    break-ties-by-index rule is preserved).  Returns ``(indices,
    scores)``.  Rows must keep at least ``k`` eligible finite cells —
    the index stage's pruning-threshold guarantee.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    n_queries, n_candidates = matrix.shape
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise InvalidParameterError(
                f"exclude must hold one index per query row, got shape "
                f"{exclude.shape} for {n_queries} rows"
            )
    excluding = exclude is not None and bool(np.any(exclude >= 0))
    if k > n_candidates - (1 if excluding else 0):
        raise InvalidParameterError(
            f"k={k} must be at most the number of eligible candidates "
            f"({n_candidates - (1 if excluding else 0)})"
        )
    indices = np.empty((n_queries, k), dtype=np.intp)
    scores = np.empty((n_queries, k))
    for row in range(n_queries):
        row_values = matrix[row]
        skipped = None
        if exclude is not None and exclude[row] >= 0:
            skipped = int(exclude[row])
        finite = np.flatnonzero(np.isfinite(row_values))
        if finite.size == n_candidates:
            chosen = knn_indices(row_values, k, exclude=skipped)
        else:
            local_skip = None
            if skipped is not None:
                hit = int(np.searchsorted(finite, skipped))
                if hit < finite.size and finite[hit] == skipped:
                    local_skip = hit
            eligible = finite.size - (1 if local_skip is not None else 0)
            if eligible < k:
                raise InvalidParameterError(
                    f"k={k} exceeds the {eligible} finite candidates of "
                    f"row {row}; sparse top-k requires an admissibly "
                    f"pruned matrix"
                )
            local = knn_indices(row_values[finite], k, exclude=local_skip)
            chosen = [int(finite[i]) for i in local]
        indices[row] = chosen
        scores[row] = row_values[indices[row]]
    return indices, scores


def knn_query(
    distance: Distance,
    query_values: np.ndarray,
    collection_values: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> List[int]:
    """Top-k query under an arbitrary distance callable.

    Distances are computed through the batch
    :func:`~repro.distances.base.distance_profile` entry point, so measures
    with a vectorized ``profile`` hook (Euclidean, Manhattan, filtered
    Euclidean) score the whole collection in one kernel.
    """
    distances = distance_profile(distance, query_values, collection_values)
    return knn_indices(distances, k, exclude=exclude)


def knn_technique_query(
    technique,
    query,
    collection: Sequence,
    k: int,
    exclude: Optional[int] = None,
) -> List[int]:
    """Top-k under a distance :class:`~repro.queries.techniques.Technique`.

    Probabilistic techniques have no stable ranking (the paper's argument
    for not using top-k as the comparison task — Section 4.1.2), so this
    raises for them.
    """
    from ..core.errors import UnsupportedQueryError

    if technique.kind != "distance":
        raise UnsupportedQueryError(
            f"top-k requires a distance technique; {technique.name} is "
            f"probabilistic and its ranking depends on epsilon"
        )
    # One profile row, not a one-row matrix: a [query] wrapper list would
    # churn a fresh identity-keyed entry through the engine's LRU on every
    # call.  All-pairs workloads belong to SimilaritySession.queries().
    distances = technique.distance_profile(query, collection)
    return knn_indices(distances, k, exclude=exclude)


def euclidean_knn_table(values: np.ndarray, k: int) -> np.ndarray:
    """All-queries ground-truth table: for each row of ``values``, the ``k``
    nearest *other* rows under Euclidean distance, shape ``(N, k)``.

    This is the harness' bulk path for ground-truth construction; self-
    matches are excluded.  One vectorized stable argsort over the whole
    matrix — the diagonal is pushed past every finite distance, which
    yields exactly :func:`knn_table`'s break-ties-by-index rankings
    without its per-row loop.
    """
    matrix = np.atleast_2d(np.asarray(values, dtype=np.float64))
    n = matrix.shape[0]
    if k >= n:
        raise InvalidParameterError(
            f"k={k} must be smaller than the collection size {n}"
        )
    pairwise = euclidean_matrix(matrix, matrix)
    np.fill_diagonal(pairwise, np.inf)
    order = np.argsort(pairwise, axis=1, kind="stable")
    return order[:, :k]
