"""Unified filter-and-refine query planner.

Every expensive query path in the repo has the same shape: decide most
candidates from cheap bounds, refine the undecided remainder with an
exact kernel, and — for Monte Carlo techniques — stop sampling as soon
as the hit fraction is decided.  Before this module each technique
re-implemented that cascade by hand (MUNICH's bounding filter, the
MUNICH-DTW envelope bounds, the DTW pruning cascade's callers); the
planner extracts it into one composable pipeline:

* :class:`BoundStage` evaluates lower/upper bound stacks (from the
  engine-cached materializations) for every pair at once and decides the
  cells whose bounds clear the threshold;
* :class:`RefineStage` runs the technique's exact kernel on the
  surviving candidate mask;
* :class:`AdaptiveMCStage` replaces a fixed-sample-size Monte Carlo
  refinement with escalating rounds and a *sound* sequential stopping
  rule against ``ε``/``τ`` — see :func:`sequential_mc_decision`.

A :class:`QueryPlan` is an ordered tuple of stages;
:meth:`QueryPlan.execute` runs them over one ``(M, N)`` workload and
returns the score matrix together with :class:`PruningStats` — how many
candidates each stage decided, how many exact refinements ran, how many
Monte Carlo samples were evaluated, and per-stage wall time.  Techniques
build their plans in :meth:`~repro.queries.techniques.Technique.build_plan`;
the default plan is a single :class:`RefineStage`, which is exactly the
pre-planner behaviour — custom :class:`Technique` subclasses keep
working unchanged.

The adaptive stopping rule
--------------------------

A fixed-``s`` Monte Carlo refinement draws ``s`` materialization pairs
and reports the hit fraction ``H/s``; the decision query compares it to
``τ``.  After evaluating only the first ``m`` draws with ``h`` hits, the
final count is bracketed by ``h <= H <= h + (s - m)``, so

* ``h / s >= τ``  ⇒  the pair is a **hit** no matter how the remaining
  draws land;
* ``(h + s - m) / s < τ``  ⇒  a **miss**, likewise unconditionally.

Both checks use the same float divisions the fixed path uses, and
``H/s`` is monotone in ``H``, so an early verdict can *never* disagree
with the fixed-``s`` verdict on the same seeded draws — the rule prunes
work, not correctness.
"""

from __future__ import annotations

import abc
import math
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.kernels import validate_backend_name

#: Kinds of score matrices a plan can produce.
PLAN_KINDS = ("distance", "probability", "calibration")

#: Precision tiers for bound/filter stages: ``mixed`` (default) streams
#: the float32 materialization tier through bound stages — admissibly
#: widened, so verdicts never flip — while refine kernels stay float64;
#: ``float64`` keeps the legacy everything-double path.
PRECISION_MODES = ("mixed", "float64")

#: Plan-policy modes: ``auto`` pilots and tunes the cascade, ``fixed``
#: runs the technique's authored cascade verbatim, ``never_index``
#: tunes but never admits an index stage.
POLICY_MODES = ("auto", "fixed", "never_index")

#: The cost model's assumed streaming bandwidth (bytes/second).  Pilot
#: wall-clock on a few hundred cells is noisy; per-cell costs are
#: floored at ``bytes_streamed / STREAM_BYTES_PER_SECOND`` so a stage
#: that must stream more data can never be *modeled* as cheaper than
#: one that streams less (the PIMDAL memory-bound argument).
STREAM_BYTES_PER_SECOND = 8e9

#: First adaptive round evaluates this fraction of the draw budget;
#: every later round doubles the cumulative target.  Geometric
#: escalation bounds the kernel-call overhead at ``log2(1/fraction)+1``
#: rounds while guaranteeing at most 2× the draws an ideal stopping
#: point would have evaluated.
ADAPTIVE_MC_FIRST_FRACTION = 1.0 / 16.0


def adaptive_mc_schedule(
    n_samples: int, first_fraction: float = ADAPTIVE_MC_FIRST_FRACTION
) -> List[int]:
    """Cumulative evaluation targets for the escalating sample rounds.

    Returns a strictly increasing list ending at ``n_samples``: the
    first target is ``ceil(n_samples · first_fraction)`` and each
    subsequent round doubles it, so a verdict reachable after ``t``
    draws costs at most ``2t`` — with only ``O(log)`` stacked kernel
    calls of overhead.
    """
    if n_samples < 1:
        raise InvalidParameterError(
            f"n_samples must be >= 1, got {n_samples}"
        )
    if not 0.0 < first_fraction <= 1.0:
        raise InvalidParameterError(
            f"first_fraction must be in (0, 1], got {first_fraction}"
        )
    targets: List[int] = []
    target = max(1, math.ceil(n_samples * first_fraction))
    while target < n_samples:
        targets.append(target)
        target = min(n_samples, target * 2)
    targets.append(n_samples)
    return targets


def sequential_mc_decision(
    hits: int, evaluated: int, n_samples: int, tau: float
) -> Optional[Tuple[bool, float]]:
    """Sound early verdict for a Monte Carlo decision query.

    ``hits`` of the first ``evaluated`` (of ``n_samples``) seeded draws
    landed within ε.  Returns ``(is_hit, value)`` when the final
    fixed-``s`` verdict is already determined, ``None`` while it is
    still open; ``value`` is the tightest bound on the final hit
    fraction that is guaranteed to sit on the verdict's side of ``τ``
    (and is exactly ``hits / n_samples`` once everything is evaluated).
    """
    guaranteed = hits / n_samples
    if guaranteed >= tau:
        return True, guaranteed
    possible = (hits + (n_samples - evaluated)) / n_samples
    if possible < tau:
        return False, possible
    return None


def sequential_mc_grid_decision(
    hits: int,
    evaluated: int,
    n_samples: int,
    tau_grid: Sequence[float],
) -> Optional[float]:
    """Early verdict covering a whole τ grid in one bracketing pass.

    After ``evaluated`` of ``n_samples`` seeded draws with ``hits``
    hits, the final hit fraction ``H/s`` is bracketed by
    ``guaranteed = hits/s <= H/s <= (hits + s - m)/s = possible``.  A
    grid threshold τ is already decided iff it lies *outside*
    ``(guaranteed, possible]`` — ``τ <= guaranteed`` is an
    unconditional hit, ``τ > possible`` an unconditional miss (the same
    float comparisons :func:`sequential_mc_decision` uses).  When no
    grid point remains inside the open bracket, ``guaranteed`` is
    returned as the cell's value: for every grid τ it sits on the same
    side of τ as the fixed-``s`` fraction, so sweeping the grid over
    the returned matrix reproduces the fixed path's decisions exactly.
    Returns ``None`` while any grid threshold is still open.  Once
    everything is evaluated the bracket collapses and the returned
    value is the exact hit fraction.
    """
    guaranteed = hits / n_samples
    possible = (hits + (n_samples - evaluated)) / n_samples
    for tau in tau_grid:
        if guaranteed < tau <= possible:
            return None
    return guaranteed


def sequential_mc_verdict(
    hits: int,
    evaluated: int,
    n_samples: int,
    tau: Union[float, Tuple[float, ...]],
) -> Optional[float]:
    """The value to record for a cell, or ``None`` while undecided.

    Dispatches on the decision target: a scalar τ uses
    :func:`sequential_mc_decision`, a τ *grid* (tuple) uses
    :func:`sequential_mc_grid_decision` so one pass of escalating
    rounds settles every grid threshold at once.
    """
    if isinstance(tau, tuple):
        return sequential_mc_grid_decision(hits, evaluated, n_samples, tau)
    verdict = sequential_mc_decision(hits, evaluated, n_samples, tau)
    return None if verdict is None else verdict[1]


def normalize_tau(tau) -> Union[None, float, Tuple[float, ...]]:
    """Canonical decision target: ``None``, a float, or a sorted tuple.

    Sequences (lists, arrays, tuples) become the τ-grid form — sorted,
    deduplicated, validated to ``[0, 1]`` — so plans, caches and wire
    payloads all key on one representation.
    """
    if tau is None:
        return None
    if isinstance(tau, (list, tuple, np.ndarray)):
        grid = tuple(sorted({float(value) for value in np.asarray(tau).ravel()}))
        if not grid:
            raise InvalidParameterError("a tau grid needs >= 1 threshold")
        if grid[0] < 0.0 or grid[-1] > 1.0:
            raise InvalidParameterError(
                f"tau grid values must be within [0, 1], got "
                f"[{grid[0]:g}, {grid[-1]:g}]"
            )
        return grid
    return float(tau)


# ---------------------------------------------------------------------------
# Plan policy: how much self-tuning the planner is allowed to do
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanPolicy:
    """The knobs steering cost-based plan choice (hashable, immutable).

    ``mode``
        ``"auto"`` (default) pilots a small sample of the workload,
        drops filter stages whose estimated selectivity is below
        ``min_selectivity`` or whose modeled cost exceeds the refine
        work they save, and orders the kept filters cheapest-first.
        ``"fixed"`` runs the technique's authored cascade verbatim
        (the pre-policy behaviour).  ``"never_index"`` tunes like
        ``auto`` but never admits an index stage.
    ``pilot_queries`` / ``pilot_candidates``
        The pilot sample's shape; drawn with ``pilot_seed`` pinned so
        every process — in-process, shard worker, daemon — scores the
        same sample and chooses the same plan.  Only *filter* stages
        (bounds, index) run on the pilot — they are deterministic and
        side-effect-free; refine stages are priced by the streamed-bytes
        model so a pilot can never advance a technique's seeded Monte
        Carlo streams.
    ``pilot_floor_cells``
        Workloads smaller than this run the authored cascade untouched
        (piloting a tiny workload costs more than it can save).
    ``min_selectivity``
        A filter stage must decide at least this fraction of the cells
        it sees to stay in the plan.
    ``cost_cache``
        Reuse chosen plans per ``(technique, workload-shape, policy)``
        key (see :func:`plan_for_workload`).
    ``use_index``
        Tri-state index toggle: ``None`` defers to the process default
        (:func:`set_default_policy` / ``set_index_enabled``).
    ``precision``
        ``"mixed"`` (default) lets bound stages stream the float32
        materialization tier (admissibly widened — decisions and values
        are identical to the double path); ``"float64"`` forces the
        legacy all-double execution.
    ``backend``
        Kernel backend for plan execution: ``None`` auto-selects the
        best available (:mod:`repro.core.kernels`), ``"numpy"`` pins
        the reference kernels, ``"numba"`` requests the optional JIT
        backend (falling back to numpy when not installed).
    """

    mode: str = "auto"
    pilot_queries: int = 4
    pilot_candidates: int = 48
    pilot_seed: int = 2012
    pilot_floor_cells: int = 8192
    min_selectivity: float = 0.02
    cost_cache: bool = True
    use_index: Optional[bool] = None
    precision: str = "mixed"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise InvalidParameterError(
                f"mode must be one of {POLICY_MODES}, got {self.mode!r}"
            )
        if self.precision not in PRECISION_MODES:
            raise InvalidParameterError(
                f"precision must be one of {PRECISION_MODES}, got "
                f"{self.precision!r}"
            )
        validate_backend_name(self.backend)
        for name in ("pilot_queries", "pilot_candidates"):
            if getattr(self, name) < 1:
                raise InvalidParameterError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.pilot_floor_cells < 0:
            raise InvalidParameterError(
                f"pilot_floor_cells must be >= 0, got {self.pilot_floor_cells}"
            )
        if not 0.0 <= self.min_selectivity <= 1.0:
            raise InvalidParameterError(
                f"min_selectivity must be within [0, 1], got "
                f"{self.min_selectivity}"
            )

    def to_wire(self) -> Dict[str, Any]:
        """The JSON-safe request form (only non-default fields)."""
        payload: Dict[str, Any] = {}
        default = PlanPolicy()
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value != getattr(default, name):
                payload[name] = value
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> "PlanPolicy":
        """Validated policy from a request payload dict."""
        if not isinstance(payload, dict):
            raise InvalidParameterError(
                f"policy must be an object, got {type(payload).__name__}"
            )
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown policy fields: {', '.join(sorted(unknown))}"
            )
        kwargs: Dict[str, Any] = {}
        for name, value in payload.items():
            if name in ("mode", "precision"):
                kwargs[name] = str(value)
            elif name == "use_index":
                kwargs[name] = None if value is None else bool(value)
            elif name == "backend":
                kwargs[name] = None if value is None else str(value)
            elif name == "cost_cache":
                kwargs[name] = bool(value)
            elif name == "min_selectivity":
                kwargs[name] = float(value)
            else:
                kwargs[name] = int(value)
        return cls(**kwargs)


def _initial_default_policy() -> PlanPolicy:
    """The process default; ``REPRO_PLAN_MODE`` overrides the mode (the
    nightly invariance loop runs the benchmark suite once per mode)."""
    mode = os.environ.get("REPRO_PLAN_MODE", "").strip() or "auto"
    return PlanPolicy(mode=mode)


_DEFAULT_POLICY = _initial_default_policy()
_POLICY_LOCK = threading.Lock()


def get_default_policy() -> PlanPolicy:
    """The process-wide policy used when none is passed explicitly."""
    return _DEFAULT_POLICY


def set_default_policy(policy: PlanPolicy) -> None:
    """Replace the process-wide default policy.

    This is the one piece of planner-global state; the legacy
    ``set_index_enabled`` toggle routes through it (``use_index``).
    """
    global _DEFAULT_POLICY
    if not isinstance(policy, PlanPolicy):
        raise InvalidParameterError(
            f"expected a PlanPolicy, got {type(policy).__name__}"
        )
    with _POLICY_LOCK:
        _DEFAULT_POLICY = policy


def resolve_policy(policy: Optional[PlanPolicy]) -> PlanPolicy:
    """``policy`` itself, or the process default when ``None``."""
    if policy is None:
        return _DEFAULT_POLICY
    if not isinstance(policy, PlanPolicy):
        raise InvalidParameterError(
            f"expected a PlanPolicy, got {type(policy).__name__}"
        )
    return policy


def effective_index_enabled(policy: Optional[PlanPolicy] = None) -> bool:
    """Whether plans may include an index stage under ``policy``.

    A policy's explicit ``use_index`` wins; ``None`` defers to the
    process default's, and an unset default means enabled.
    """
    policy = resolve_policy(policy)
    if policy.mode == "never_index":
        return False
    if policy.use_index is not None:
        return policy.use_index
    default = _DEFAULT_POLICY
    if default.use_index is not None:
        return default.use_index
    return True


# ---------------------------------------------------------------------------
# Plan explanation: why the chooser kept, dropped and ordered stages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StageEstimate:
    """The pilot's verdict on one candidate stage.

    ``selectivity`` is the fraction of pilot cells the stage decided
    (of those it saw), ``seconds_per_cell`` its measured pilot cost,
    ``bytes_per_cell`` the cost model's streamed-bytes estimate, and
    ``kept``/``reason`` the chooser's decision and its one-line why.
    """

    stage: str
    selectivity: float
    seconds_per_cell: float
    bytes_per_cell: float
    kept: bool
    reason: str

    def to_payload(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "selectivity": self.selectivity,
            "seconds_per_cell": self.seconds_per_cell,
            "bytes_per_cell": self.bytes_per_cell,
            "kept": self.kept,
            "reason": self.reason,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StageEstimate":
        return cls(
            stage=str(payload["stage"]),
            selectivity=float(payload["selectivity"]),
            seconds_per_cell=float(payload["seconds_per_cell"]),
            bytes_per_cell=float(payload["bytes_per_cell"]),
            kept=bool(payload["kept"]),
            reason=str(payload["reason"]),
        )


@dataclass(frozen=True)
class PlanExplanation:
    """What the planner chose for one workload, and why.

    Recorded on :class:`PruningStats` by every policy-aware execution,
    shipped through the service stats payload, and rendered by
    ``cli --stats`` / ``cli explain`` — the daemon and cluster paths
    surface exactly what an in-process run would.
    """

    technique_name: str
    kind: str
    mode: str
    chosen_stages: Tuple[str, ...]
    estimates: Tuple[StageEstimate, ...] = ()
    pilot_cells: int = 0
    cache_hit: bool = False
    rationale: str = ""

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe wire form (the service stats payload carries it)."""
        return {
            "technique": self.technique_name,
            "kind": self.kind,
            "mode": self.mode,
            "chosen_stages": list(self.chosen_stages),
            "estimates": [entry.to_payload() for entry in self.estimates],
            "pilot_cells": self.pilot_cells,
            "cache_hit": self.cache_hit,
            "rationale": self.rationale,
        }

    @classmethod
    def from_payload(
        cls, payload: Optional[Dict[str, Any]]
    ) -> Optional["PlanExplanation"]:
        """Tolerant inverse of :meth:`to_payload` (``None`` passes through,
        so stats from a pre-policy daemon still parse)."""
        if payload is None:
            return None
        return cls(
            technique_name=str(payload.get("technique", "")),
            kind=str(payload.get("kind", "")),
            mode=str(payload.get("mode", "fixed")),
            chosen_stages=tuple(payload.get("chosen_stages", ())),
            estimates=tuple(
                StageEstimate.from_payload(entry)
                for entry in payload.get("estimates", ())
            ),
            pilot_cells=int(payload.get("pilot_cells", 0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            rationale=str(payload.get("rationale", "")),
        )

    def merged(self, other: "PlanExplanation") -> "PlanExplanation":
        """Combine two shards' explanations into one workload-level record.

        Shards of one workload run the same pinned-seed pilot recipe,
        so they normally choose identical stage lists — the estimates
        are then averaged weighted by pilot cells.  If a degenerate
        shard shape made a different choice, the first shard's plan is
        reported and the divergence is called out in the rationale
        instead of silently averaging incompatible records.
        """
        if other.chosen_stages != self.chosen_stages:
            note = (
                f"shards diverged: {'+'.join(other.chosen_stages) or 'none'}"
                f" vs {'+'.join(self.chosen_stages) or 'none'}"
            )
            if note in self.rationale:
                return self
            rationale = f"{self.rationale}; {note}" if self.rationale else note
            return replace(self, rationale=rationale)
        total = self.pilot_cells + other.pilot_cells
        if not self.estimates or not other.estimates or total == 0:
            return replace(self, pilot_cells=total)
        weight = self.pilot_cells / total
        other_by_stage = {entry.stage: entry for entry in other.estimates}
        estimates = []
        for entry in self.estimates:
            twin = other_by_stage.get(entry.stage)
            if twin is None:
                estimates.append(entry)
                continue
            estimates.append(
                replace(
                    entry,
                    selectivity=(
                        weight * entry.selectivity
                        + (1.0 - weight) * twin.selectivity
                    ),
                    seconds_per_cell=(
                        weight * entry.seconds_per_cell
                        + (1.0 - weight) * twin.seconds_per_cell
                    ),
                )
            )
        return replace(
            self,
            estimates=tuple(estimates),
            pilot_cells=total,
            cache_hit=self.cache_hit and other.cache_hit,
        )

    def summary_lines(self) -> List[str]:
        """The ``cli --stats`` rendering (indented under the stage table)."""
        chosen = " -> ".join(self.chosen_stages) or "(none)"
        cache = ", cached plan" if self.cache_hit else ""
        lines = [f"  plan [{self.mode}] {chosen}{cache}"]
        for entry in self.estimates:
            verdict = "kept" if entry.kept else "dropped"
            lines.append(
                f"    {entry.stage:12s} est. selectivity "
                f"{100.0 * entry.selectivity:5.1f}%, "
                f"~{entry.seconds_per_cell * 1e9:.0f} ns/cell "
                f"({entry.bytes_per_cell:.0f} B/cell) -> {verdict}: "
                f"{entry.reason}"
            )
        if self.rationale:
            lines.append(f"    rationale: {self.rationale}")
        return lines


@dataclass(frozen=True)
class ExplainReport:
    """What ``QuerySet.explain()`` returns: chosen plan + est vs actual.

    ``records`` pairs each *executed* stage with the pilot's estimated
    selectivity (``None`` when the stage was not piloted — fixed mode,
    tiny workloads, cache-bypassed runs) and the actual selectivity
    measured during execution.  Identical across in-process, daemon
    and cluster backends for the same workload and policy.
    """

    technique_name: str
    kind: str
    mode: str
    plan: Tuple[str, ...]
    records: Tuple[Dict[str, Any], ...]
    rationale: str
    cache_hit: bool
    executor: Optional[Dict] = None
    #: Kernel backend / bound-stage dtype the execution recorded
    #: (``None`` on legacy stats records).
    backend: Optional[str] = None
    bound_dtype: Optional[str] = None

    @classmethod
    def from_stats(cls, stats: "PruningStats") -> "ExplainReport":
        """Build the report off one executed plan's stats record."""
        explanation = stats.explanation
        estimates = {}
        if explanation is not None:
            estimates = {
                entry.stage: entry for entry in explanation.estimates
            }
        records = []
        executed = set()
        for entry in stats.stages:
            executed.add(entry.stage)
            estimate = estimates.get(entry.stage)
            actual = (
                entry.decided / entry.entered if entry.entered else 0.0
            )
            records.append(
                {
                    "stage": entry.stage,
                    "estimated_selectivity": (
                        estimate.selectivity if estimate else None
                    ),
                    "actual_selectivity": actual,
                    "decided": entry.decided,
                    "entered": entry.entered,
                }
            )
        # Dropped stages never execute, so they have no actuals — their
        # pilot estimate is still part of the decision record.
        for estimate in (explanation.estimates if explanation else ()):
            if estimate.stage in executed:
                continue
            records.append(
                {
                    "stage": estimate.stage,
                    "estimated_selectivity": estimate.selectivity,
                    "actual_selectivity": None,
                    "decided": 0,
                    "entered": 0,
                }
            )
        return cls(
            technique_name=stats.technique_name,
            kind=stats.kind,
            mode=explanation.mode if explanation else "fixed",
            plan=tuple(entry.stage for entry in stats.stages),
            records=tuple(records),
            rationale=explanation.rationale if explanation else "",
            cache_hit=explanation.cache_hit if explanation else False,
            executor=stats.executor,
            backend=stats.backend,
            bound_dtype=stats.bound_dtype,
        )

    def summary(self) -> str:
        """Human-readable rendering (the ``cli explain`` output)."""
        chosen = " -> ".join(self.plan) or "(none)"
        cache = " (cached plan)" if self.cache_hit else ""
        lines = [
            f"{self.technique_name} ({self.kind}) plan "
            f"[{self.mode}]{cache}: {chosen}"
        ]
        for record in self.records:
            estimated = record["estimated_selectivity"]
            actual = record["actual_selectivity"]
            est = (
                f"{100.0 * estimated:5.1f}%"
                if estimated is not None
                else "  n/a"
            )
            if actual is None:
                lines.append(
                    f"  {record['stage']:12s} estimated {est}  "
                    f"(dropped by the chooser)"
                )
                continue
            lines.append(
                f"  {record['stage']:12s} estimated {est}  actual "
                f"{100.0 * actual:5.1f}% "
                f"({record['decided']}/{record['entered']} cells)"
            )
        if self.backend or self.bound_dtype:
            bits = []
            if self.backend:
                bits.append(f"backend={self.backend}")
            if self.bound_dtype:
                bits.append(f"bound dtype={self.bound_dtype}")
            lines.append(f"  kernels: {', '.join(bits)}")
        if self.rationale:
            lines.append(f"  rationale: {self.rationale}")
        if self.executor:
            pairs = ", ".join(
                f"{key}={value}" for key, value in self.executor.items()
            )
            lines.append(f"  executor: {pairs}")
        return "\n".join(lines)


@dataclass(frozen=True)
class StageStats:
    """One plan stage's contribution to a workload.

    ``entered`` counts the undecided cells the stage received (its
    *visited* set), ``skipped`` the cells earlier stages already settled
    so this stage never saw, ``decided`` how many of the visited cells
    it settled, ``refined`` how many exact kernel evaluations ran, and
    ``samples_drawn`` how many Monte Carlo draws were actually
    *evaluated* (the expensive part — the integer draws themselves are
    free and always taken upfront for seed parity).
    """

    stage: str
    entered: int = 0
    decided: int = 0
    refined: int = 0
    samples_drawn: int = 0
    skipped: int = 0
    seconds: float = 0.0

    @property
    def visited(self) -> int:
        """Cells this stage actually visited (alias for ``entered``)."""
        return self.entered

    def merged(self, other: "StageStats") -> "StageStats":
        """Element-wise sum with another shard's stats for this stage."""
        return StageStats(
            stage=self.stage,
            entered=self.entered + other.entered,
            decided=self.decided + other.decided,
            refined=self.refined + other.refined,
            samples_drawn=self.samples_drawn + other.samples_drawn,
            skipped=self.skipped + other.skipped,
            seconds=self.seconds + other.seconds,
        )


@dataclass(frozen=True)
class PruningStats:
    """Filter-and-refine effectiveness of one executed plan.

    ``stages`` preserves execution order; on a sharded run the per-shard
    stats are merged stage-by-stage and the executor's chosen shard plan
    is logged in ``executor``.
    """

    technique_name: str
    kind: str
    n_queries: int
    n_candidates: int
    stages: Tuple[StageStats, ...] = ()
    executor: Optional[Dict] = None
    #: Explicit cell count for records aggregated across *different*
    #: workloads (the CLI's per-command roll-up), where ``M × N`` of any
    #: single workload no longer describes the total.
    cells: Optional[int] = None
    #: Why this plan was chosen (policy-aware executions record it;
    #: merged shard-by-shard so the sharded/cluster paths explain
    #: themselves the same way an in-process run does).
    explanation: Optional[PlanExplanation] = None
    #: Kernel backend that executed the plan (``"numpy"``/``"numba"``);
    #: ``None`` on legacy records and direct ``plan.execute`` calls.
    backend: Optional[str] = None
    #: Dtype the bound stages streamed (``"float32"`` under the mixed
    #: precision tier); ``None`` when no bound stage ran.
    bound_dtype: Optional[str] = None

    @property
    def total_cells(self) -> int:
        """Workload size (``M × N``, unless explicitly overridden)."""
        if self.cells is not None:
            return self.cells
        return self.n_queries * self.n_candidates

    @property
    def total_seconds(self) -> float:
        """Wall time summed over every stage."""
        return float(sum(entry.seconds for entry in self.stages))

    @property
    def samples_drawn(self) -> int:
        """Monte Carlo draws evaluated across all stages."""
        return int(sum(entry.samples_drawn for entry in self.stages))

    def decided_by(self, stage: str) -> int:
        """Cells decided by the named stage (0 when absent)."""
        return sum(
            entry.decided for entry in self.stages if entry.stage == stage
        )

    def stage(self, name: str) -> Optional[StageStats]:
        """The (merged) stats entry for one stage name, if present."""
        for entry in self.stages:
            if entry.stage == name:
                return entry
        return None

    @property
    def index_selectivity(self) -> Optional[float]:
        """Fraction of cells the summarization index kept as candidates.

        ``None`` when no index stage ran (or the workload had no cells);
        ``1.0`` means the index pruned nothing.
        """
        entry = self.stage("index")
        if entry is None or self.total_cells <= 0:
            return None
        return 1.0 - entry.decided / self.total_cells

    def merged(self, other: "PruningStats") -> "PruningStats":
        """Combine with another shard of the same plan.

        Stages are summed by name in this record's order; stages only
        the other shard ran (a technique may plan differently per
        shard in degenerate cases) are appended.
        """
        pending: Dict[str, List[StageStats]] = {}
        for entry in other.stages:
            pending.setdefault(entry.stage, []).append(entry)
        merged: List[StageStats] = []
        for entry in self.stages:
            for extra in pending.pop(entry.stage, []):
                entry = entry.merged(extra)
            merged.append(entry)
        for extras in pending.values():
            merged.extend(extras)
        if self.explanation is None:
            explanation = other.explanation
        elif other.explanation is None:
            explanation = self.explanation
        else:
            explanation = self.explanation.merged(other.explanation)
        return PruningStats(
            technique_name=self.technique_name,
            kind=self.kind,
            n_queries=self.n_queries,
            n_candidates=self.n_candidates,
            stages=tuple(merged),
            executor=self.executor if self.executor else other.executor,
            explanation=explanation,
            backend=self.backend or other.backend,
            bound_dtype=self.bound_dtype or other.bound_dtype,
        )

    @staticmethod
    def merge_shards(
        shards: Sequence["PruningStats"],
        n_queries: int,
        n_candidates: int,
        executor: Optional[Dict] = None,
    ) -> Optional["PruningStats"]:
        """Merge per-shard stats into one workload-level record.

        Stage counters sum stage-by-stage and the shards'
        :class:`PlanExplanation` records merge pilot-cell-weighted
        (see :meth:`PlanExplanation.merged`), so estimated-vs-actual
        selectivities — hence ``explain()`` output — read the same
        whether the plan ran in-process, sharded, or on a cluster.
        """
        shards = [s for s in shards if s is not None]
        if not shards:
            return None
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merged(shard)
        return replace(
            merged,
            n_queries=n_queries,
            n_candidates=n_candidates,
            executor=executor,
        )

    def summary(self) -> str:
        """One human-readable line per stage (the CLI's ``--stats`` view)."""
        total = max(self.total_cells, 1)
        if self.cells is not None:
            shape = f"{self.cells} cells"
        else:
            shape = f"{self.n_queries}x{self.n_candidates}"
        lines = [f"{self.technique_name} ({self.kind}, {shape}):"]
        for entry in self.stages:
            line = (
                f"  {entry.stage:12s} decided {entry.decided}/{total} "
                f"({100.0 * entry.decided / total:5.1f}%) "
                f"in {entry.seconds * 1e3:8.2f} ms"
            )
            if entry.skipped:
                line += (
                    f", visited {entry.visited}, skipped {entry.skipped}"
                )
            if entry.refined:
                line += f", {entry.refined} refined"
            if entry.samples_drawn:
                line += f", {entry.samples_drawn} MC samples"
            lines.append(line)
        selectivity = self.index_selectivity
        if selectivity is not None:
            kept = total - self.decided_by("index")
            lines.append(
                f"  index selectivity {kept}/{total} candidates kept "
                f"({100.0 * selectivity:5.1f}%)"
            )
        if self.backend or self.bound_dtype:
            bits = []
            if self.backend:
                bits.append(f"backend={self.backend}")
            if self.bound_dtype:
                bits.append(f"bound dtype={self.bound_dtype}")
            lines.append(f"  kernels      {', '.join(bits)}")
        if self.executor:
            pairs = ", ".join(
                f"{key}={value}" for key, value in self.executor.items()
            )
            lines.append(f"  executor     {pairs}")
        if self.explanation is not None:
            lines.extend(self.explanation.summary_lines())
        return "\n".join(lines)


@dataclass
class PlanContext:
    """Mutable state one plan execution threads through its stages."""

    technique: "object"
    kind: str
    queries: Sequence
    collection: Sequence
    epsilons: Optional[np.ndarray]
    #: Decision target — a scalar τ or a τ-grid tuple (one bracketing
    #: pass covers the whole optimal-τ sweep).
    tau: Union[None, float, Tuple[float, ...]]
    values: np.ndarray
    undecided: np.ndarray
    #: Top-k target for kNN workloads — lets the index stage derive
    #: per-row pruning thresholds from upper bounds.  ``exclude`` marks
    #: at most one self-match column per row (``-1`` for none).
    knn_k: Optional[int] = None
    exclude: Optional[np.ndarray] = None
    stage_stats: List[StageStats] = field(default_factory=list)
    #: The policy this execution runs under (stages consult it — the
    #: index stage's enable switch lives here, not in module state).
    policy: Optional[PlanPolicy] = None
    #: Dtype the bound stage actually streamed this execution (set by
    #: :class:`BoundStage`; surfaces in ``PruningStats.bound_dtype``).
    bound_dtype: Optional[str] = None

    @property
    def n_undecided(self) -> int:
        """Cells still awaiting a verdict."""
        return int(np.count_nonzero(self.undecided))


class PlanStage(abc.ABC):
    """One step of a filter-and-refine cascade.

    A stage reads the context's ``undecided`` mask, writes verdicts into
    ``values`` for the cells it settles, clears those cells from the
    mask, and returns ``(refined, samples_drawn)`` accounting.  Stage
    timing and decided-cell counting are handled by
    :meth:`QueryPlan.execute`.
    """

    name: str = "stage"

    @abc.abstractmethod
    def run(self, context: PlanContext) -> Tuple[int, int]:
        """Execute the stage; returns ``(refined, samples_drawn)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BoundStage(PlanStage):
    """Decide cells whose lower/upper distance bounds clear ε.

    The technique supplies ``matrix_bounds(queries, collection)`` —
    ``(lower, upper)`` stacks valid for *every* materialization of each
    pair, computed from engine-cached stacks (bounding intervals,
    band-inflated envelopes).  Cells with ``lower > ε`` are certain
    misses (probability 0), cells with ``upper <= ε`` certain hits
    (probability 1); ``slack`` guards the comparisons for techniques
    whose batched bound sums may reorder floats (MUNICH-DTW uses
    :data:`~repro.distances.dtw_batch.PRUNE_SLACK`).

    Under a ``precision="mixed"`` policy the stage asks the technique
    for its float32 bound tier (``matrix_bounds(..., precision=
    "float32")``) — bounds computed from the engine's half-width
    materializations and *admissibly widened* by the technique, so
    every cell decided here would also be decided (identically) by the
    float64 path; the handful of borderline cells the widening leaves
    open simply fall through to the exact float64 refine.  Techniques
    without a float32 tier (the ``precision`` keyword raises
    ``TypeError``) transparently keep the legacy double path.
    """

    name = "bounds"

    def __init__(self, slack: float = 0.0) -> None:
        if slack < 0.0:
            raise InvalidParameterError(f"slack must be >= 0, got {slack}")
        self.slack = slack

    def run(self, context: PlanContext) -> Tuple[int, int]:
        if context.kind != "probability" or context.epsilons is None:
            raise InvalidParameterError(
                "BoundStage requires a probability workload with epsilons"
            )
        policy = context.policy
        bounds = None
        if policy is not None and policy.precision == "mixed":
            try:
                bounds = context.technique.matrix_bounds(
                    context.queries, context.collection,
                    precision="float32",
                )
            except TypeError:
                bounds = None
            else:
                context.bound_dtype = "float32"
        if bounds is None:
            bounds = context.technique.matrix_bounds(
                context.queries, context.collection
            )
            context.bound_dtype = "float64"
        lower, upper = bounds
        guard_hi = (context.epsilons * (1.0 + self.slack))[:, None]
        guard_lo = (context.epsilons * (1.0 - self.slack))[:, None]
        misses = context.undecided & (lower > guard_hi)
        hits = context.undecided & (upper <= guard_lo)
        context.values[misses] = 0.0
        context.values[hits] = 1.0
        context.undecided &= ~(misses | hits)
        return 0, 0

    def __repr__(self) -> str:
        return f"BoundStage(slack={self.slack:g})"


class RefineStage(PlanStage):
    """Run the technique's exact kernel on the surviving mask.

    Delegates to
    :meth:`~repro.queries.techniques.Technique.refine_matrix`, which
    must fill every still-undecided cell; a refine stage therefore
    always terminates the plan's undecided set.
    """

    name = "refine"
    #: Whether the context's τ is forwarded to the refine kernel
    #: (enables the adaptive stopping rule in the subclass).
    forward_tau = False

    def run(self, context: PlanContext) -> Tuple[int, int]:
        tau = context.tau if self.forward_tau else None
        refined, samples = context.technique.refine_matrix(
            context.kind,
            context.queries,
            context.collection,
            context.epsilons,
            context.values,
            context.undecided,
            tau=tau,
        )
        context.undecided[:] = False
        return int(refined), int(samples)


class AdaptiveMCStage(RefineStage):
    """Monte Carlo refinement with the sequential stopping rule.

    Identical to :class:`RefineStage` except that the decision
    threshold ``τ`` is forwarded to the technique's refine kernel, which
    evaluates the seeded draw stack in escalating rounds
    (:func:`adaptive_mc_schedule`) and stops as soon as
    :func:`sequential_mc_decision` settles the cell.  Reported values
    are guaranteed to sit on the same side of ``τ`` as the fixed-sample
    path's, so decision queries (``prob_range``) are unchanged — only
    cheaper.
    """

    name = "adaptive-mc"
    forward_tau = True


class QueryPlan:
    """An ordered filter-and-refine cascade over one ``(M, N)`` workload."""

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[PlanStage]) -> None:
        if not stages:
            raise InvalidParameterError("a query plan needs >= 1 stage")
        self.stages = tuple(stages)

    def execute(
        self,
        technique,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon=None,
        tau: Union[None, float, Tuple[float, ...]] = None,
        knn_k: Optional[int] = None,
        exclude: Optional[np.ndarray] = None,
        policy: Optional[PlanPolicy] = None,
    ) -> Tuple[np.ndarray, PruningStats]:
        """Run the cascade; returns ``(values, stats)``.

        ``epsilon`` (scalar or per-query vector) is required for
        probability workloads; for *distance* workloads it optionally
        marks a decision-mode range query, letting index stages retire
        certain non-matches as ``+inf`` instead of materializing them.
        ``tau`` is the optional decision threshold adaptive stages stop
        against; ``knn_k``/``exclude`` describe a top-k workload the
        same way (pruned cells become ``+inf``; ``exclude`` holds each
        row's self-match column, ``-1`` for none).
        """
        from .techniques import _epsilon_vector

        if kind not in PLAN_KINDS:
            raise InvalidParameterError(
                f"kind must be one of {PLAN_KINDS}, got {kind!r}"
            )
        n_queries = len(queries)
        n_candidates = len(collection)
        if kind == "probability":
            epsilons = _epsilon_vector(epsilon, n_queries)
        elif kind == "distance" and epsilon is not None:
            epsilons = _epsilon_vector(epsilon, n_queries)
        elif epsilon is not None:
            raise InvalidParameterError(f"{kind} plans take no epsilon")
        else:
            epsilons = None
        if knn_k is not None:
            if kind != "distance":
                raise InvalidParameterError(
                    f"knn_k applies to distance plans only, got {kind!r}"
                )
            if knn_k < 1:
                raise InvalidParameterError(
                    f"knn_k must be >= 1, got {knn_k}"
                )
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise InvalidParameterError(
                    f"exclude must hold one index per query row, got "
                    f"shape {exclude.shape} for {n_queries} rows"
                )
        values = np.empty((n_queries, n_candidates))
        if n_queries == 0:
            return values, PruningStats(
                technique_name=technique.name,
                kind=kind,
                n_queries=0,
                n_candidates=n_candidates,
                stages=tuple(
                    StageStats(stage=stage.name) for stage in self.stages
                ),
            )
        context = PlanContext(
            technique=technique,
            kind=kind,
            queries=queries,
            collection=collection,
            epsilons=epsilons,
            tau=tau,
            values=values,
            undecided=np.ones((n_queries, n_candidates), dtype=bool),
            knn_k=knn_k,
            exclude=exclude,
            policy=policy,
        )
        total_cells = n_queries * n_candidates
        for stage in self.stages:
            entered = context.n_undecided
            started = time.perf_counter()
            refined, samples = stage.run(context)
            elapsed = time.perf_counter() - started
            context.stage_stats.append(
                StageStats(
                    stage=stage.name,
                    entered=entered,
                    decided=entered - context.n_undecided,
                    refined=refined,
                    samples_drawn=samples,
                    skipped=total_cells - entered,
                    seconds=elapsed,
                )
            )
        if context.n_undecided:
            raise InvalidParameterError(
                f"plan {self!r} left {context.n_undecided} cells undecided; "
                f"every plan must end in a refine stage"
            )
        return values, PruningStats(
            technique_name=technique.name,
            kind=kind,
            n_queries=n_queries,
            n_candidates=n_candidates,
            stages=tuple(context.stage_stats),
            bound_dtype=context.bound_dtype,
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(stage) for stage in self.stages)
        return f"QueryPlan([{inner}])"


# ---------------------------------------------------------------------------
# Cost-based plan choice: pilot sampling, the bytes-streamed model, cache
# ---------------------------------------------------------------------------


def _series_length(collection: Sequence) -> int:
    """Timestamp count of the workload's series (cost-model input)."""
    try:
        return max(1, len(collection[0]))
    except (IndexError, TypeError):
        return 1


def _stage_bytes_per_cell(
    stage_name: str,
    technique,
    length: int,
    policy: Optional[PlanPolicy] = None,
) -> float:
    """Streamed bytes one cell costs a stage, under the cost model.

    Deliberately coarse — the point is *relative* stage ordering on a
    memory-bound machine, not absolute throughput: an index stage
    streams two ``S``-segment float64 summaries, a bound stage two
    full-length interval stacks, an exact refine two full-length value
    stacks, and a Monte Carlo refine its whole per-cell draw stack.
    Dtype-aware: under a ``precision="mixed"`` policy the bound stage
    streams the float32 tier, so its cells cost half the bytes — which
    is exactly what lets the pilot keep a filter the double-precision
    pricing would have dropped.
    """
    if stage_name == "index":
        segments = getattr(technique, "index_segments", None) or 1
        return 16.0 * segments
    if stage_name == "bounds":
        if policy is not None and policy.precision == "mixed":
            return 16.0 * length
        return 32.0 * length
    munich = getattr(technique, "_munich", None)
    if munich is not None and getattr(munich, "method", "") == "montecarlo":
        return 16.0 * length * max(1, getattr(munich, "n_samples", 1))
    return 16.0 * length


def _pilot_workload(
    queries: Sequence,
    collection: Sequence,
    epsilons: Optional[np.ndarray],
    policy: PlanPolicy,
) -> Tuple[Sequence, Sequence, Optional[np.ndarray]]:
    """The pinned-seed pilot sample of one ``(M, N)`` workload."""
    n_queries = len(queries)
    n_candidates = len(collection)
    rng = np.random.default_rng(policy.pilot_seed)
    rows = np.sort(
        rng.choice(
            n_queries,
            size=min(policy.pilot_queries, n_queries),
            replace=False,
        )
    )
    cols = np.sort(
        rng.choice(
            n_candidates,
            size=min(policy.pilot_candidates, n_candidates),
            replace=False,
        )
    )
    pilot_queries = [queries[int(i)] for i in rows]
    pilot_collection = [collection[int(j)] for j in cols]
    pilot_eps = epsilons[rows] if epsilons is not None else None
    return pilot_queries, pilot_collection, pilot_eps


def tune_plan(
    technique,
    plan: QueryPlan,
    kind: str,
    queries: Sequence,
    collection: Sequence,
    epsilons: Optional[np.ndarray],
    tau,
    knn_k: Optional[int],
    policy: PlanPolicy,
) -> Tuple[QueryPlan, PlanExplanation]:
    """Score the cascade on a pilot sample and choose the stages to run.

    Only *filter* stages (everything before the plan's final refine)
    are candidates for dropping/reordering — the final refine stage is
    what guarantees every cell gets a verdict, and filter stages are
    sound (they decide a cell only when its outcome is certain), so any
    subset in any order produces identical decisions; the chooser
    affects cost only.  Filters run on the pinned-seed pilot to
    estimate selectivity and per-cell cost; the refine stage is priced
    by the streamed-bytes model (running it might consume seeded Monte
    Carlo draws).  A filter stays when its estimated selectivity clears
    ``policy.min_selectivity`` *and* the refine work it saves exceeds
    its own modeled cost; the kept filters run cheapest-first by
    modeled bytes (deterministic across processes, unlike wall-clock).
    """
    names = tuple(stage.name for stage in plan.stages)
    length = _series_length(collection)
    prunable = list(plan.stages[:-1])
    final = plan.stages[-1]
    if policy.mode == "fixed":
        return plan, PlanExplanation(
            technique_name=technique.name,
            kind=kind,
            mode=policy.mode,
            chosen_stages=names,
            rationale="fixed policy: technique cascade as authored",
        )
    if not prunable:
        return plan, PlanExplanation(
            technique_name=technique.name,
            kind=kind,
            mode=policy.mode,
            chosen_stages=names,
            rationale="single-stage plan; nothing to tune",
        )
    total_cells = len(queries) * len(collection)
    if total_cells < policy.pilot_floor_cells:
        return plan, PlanExplanation(
            technique_name=technique.name,
            kind=kind,
            mode=policy.mode,
            chosen_stages=names,
            rationale=(
                f"workload of {total_cells} cells is below the pilot "
                f"floor ({policy.pilot_floor_cells}); authored cascade"
            ),
        )
    if knn_k is not None and policy.pilot_candidates <= 2 * knn_k:
        return plan, PlanExplanation(
            technique_name=technique.name,
            kind=kind,
            mode=policy.mode,
            chosen_stages=names,
            rationale=(
                f"pilot of {policy.pilot_candidates} candidates is too "
                f"small to judge top-{knn_k} pruning; authored cascade"
            ),
        )
    pilot_queries, pilot_collection, pilot_eps = _pilot_workload(
        queries, collection, epsilons, policy
    )
    pilot_cells = len(pilot_queries) * len(pilot_collection)
    context = PlanContext(
        technique=technique,
        kind=kind,
        queries=pilot_queries,
        collection=pilot_collection,
        epsilons=pilot_eps,
        tau=tau,
        values=np.empty((len(pilot_queries), len(pilot_collection))),
        undecided=np.ones(
            (len(pilot_queries), len(pilot_collection)), dtype=bool
        ),
        knn_k=knn_k,
        exclude=None,
        policy=policy,
    )
    refine_cost = (
        _stage_bytes_per_cell(final.name, technique, length, policy)
        / STREAM_BYTES_PER_SECOND
    )
    estimates: List[StageEstimate] = []
    kept: List[Tuple[float, int, PlanStage]] = []
    pilot_broken = False
    for position, stage in enumerate(prunable):
        bytes_per_cell = _stage_bytes_per_cell(
            stage.name, technique, length, policy
        )
        if pilot_broken:
            kept.append((bytes_per_cell, position, stage))
            estimates.append(
                StageEstimate(
                    stage=stage.name,
                    selectivity=0.0,
                    seconds_per_cell=0.0,
                    bytes_per_cell=bytes_per_cell,
                    kept=True,
                    reason="pilot aborted earlier; kept as authored",
                )
            )
            continue
        entered = context.n_undecided
        started = time.perf_counter()
        try:
            stage.run(context)
        except Exception as error:  # sound fallback: keep as authored
            pilot_broken = True
            kept.append((bytes_per_cell, position, stage))
            estimates.append(
                StageEstimate(
                    stage=stage.name,
                    selectivity=0.0,
                    seconds_per_cell=0.0,
                    bytes_per_cell=bytes_per_cell,
                    kept=True,
                    reason=f"pilot failed ({type(error).__name__}); kept",
                )
            )
            continue
        elapsed = time.perf_counter() - started
        decided = entered - context.n_undecided
        selectivity = decided / entered if entered else 0.0
        seconds_per_cell = elapsed / max(entered, 1)
        stage_cost = max(
            seconds_per_cell, bytes_per_cell / STREAM_BYTES_PER_SECOND
        )
        if selectivity < policy.min_selectivity:
            keep = False
            reason = (
                f"estimated selectivity {100.0 * selectivity:.1f}% is "
                f"below the {100.0 * policy.min_selectivity:.1f}% floor"
            )
        elif selectivity * refine_cost <= stage_cost:
            keep = False
            reason = "costs more than the refine work it saves"
        else:
            keep = True
            reason = (
                f"saves ~{selectivity * refine_cost / stage_cost:.1f}x "
                f"its cost in refine work"
            )
        if keep:
            kept.append((bytes_per_cell, position, stage))
        estimates.append(
            StageEstimate(
                stage=stage.name,
                selectivity=selectivity,
                seconds_per_cell=seconds_per_cell,
                bytes_per_cell=bytes_per_cell,
                kept=keep,
                reason=reason,
            )
        )
    kept.sort(key=lambda entry: (entry[0], entry[1]))
    stages = tuple(stage for _, _, stage in kept) + (final,)
    dropped = len(prunable) - len(kept)
    rationale = (
        f"pilot scored {pilot_cells} of {total_cells} cells: kept "
        f"{len(kept)}/{len(prunable)} filter stages"
        + (f", dropped {dropped}" if dropped else "")
        + ", ordered cheapest-first"
    )
    return QueryPlan(stages), PlanExplanation(
        technique_name=technique.name,
        kind=kind,
        mode=policy.mode,
        chosen_stages=tuple(stage.name for stage in stages),
        estimates=tuple(estimates),
        pilot_cells=pilot_cells,
        cache_hit=False,
        rationale=rationale,
    )


class _PlanCache:
    """Bounded LRU of chosen plans per (technique, workload-shape, policy).

    Keys use the technique's identity with a strong reference pinned in
    the entry (the engine cache's precedent), so ids can never be
    recycled while an entry lives.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self._entries: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()

    def get(self, key: Tuple) -> Optional[Tuple[QueryPlan, PlanExplanation]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            _, plan, explanation = entry
            return plan, explanation

    def put(
        self,
        key: Tuple,
        technique,
        plan: QueryPlan,
        explanation: PlanExplanation,
    ) -> None:
        with self._lock:
            self._entries[key] = (technique, plan, explanation)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_PLAN_CACHE = _PlanCache()


def clear_plan_cache() -> None:
    """Drop every cached plan (tests; or after mutating a collection)."""
    _PLAN_CACHE.clear()


def plan_cache_size() -> int:
    """Number of cached plans (observability hook)."""
    return len(_PLAN_CACHE)


def _epsilon_signature(epsilon) -> Optional[Tuple]:
    """A coarse ε fingerprint for the plan-cache key.

    Selectivity depends on the threshold's magnitude, not its exact
    per-query values — the mean (rounded) plus the vector-vs-scalar
    shape is enough to keep workloads with materially different
    thresholds from sharing a plan.
    """
    if epsilon is None:
        return None
    values = np.asarray(epsilon, dtype=np.float64)
    mean = float(np.round(values.mean(), 9)) if values.size else 0.0
    return (int(values.ndim), int(values.size), mean)


def plan_for_workload(
    technique,
    plan: QueryPlan,
    kind: str,
    queries: Sequence,
    collection: Sequence,
    epsilon,
    tau,
    knn_k: Optional[int],
    policy: PlanPolicy,
) -> Tuple[QueryPlan, PlanExplanation]:
    """The tuned (possibly cached) plan for one workload.

    ``plan`` is the technique's authored cascade (``build_plan`` plus
    the index-stage prepend); the chooser tunes it under ``policy`` and
    memoizes the result per ``(technique identity, kind, M, N, ε
    signature, τ, k, policy)`` — one pilot prices a whole sweep of
    identically-shaped executions.
    """
    from .techniques import _epsilon_vector

    epsilons = (
        _epsilon_vector(epsilon, len(queries))
        if epsilon is not None
        else None
    )
    key: Optional[Tuple] = None
    if policy.cost_cache and policy.mode != "fixed":
        key = (
            id(technique),
            kind,
            len(queries),
            len(collection),
            _epsilon_signature(epsilon),
            tau,
            knn_k,
            policy,
        )
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            plan, explanation = cached
            return plan, replace(explanation, cache_hit=True)
    tuned, explanation = tune_plan(
        technique, plan, kind, queries, collection, epsilons, tau, knn_k, policy
    )
    if key is not None:
        _PLAN_CACHE.put(key, technique, tuned, explanation)
    return tuned, explanation
