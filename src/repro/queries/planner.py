"""Unified filter-and-refine query planner.

Every expensive query path in the repo has the same shape: decide most
candidates from cheap bounds, refine the undecided remainder with an
exact kernel, and — for Monte Carlo techniques — stop sampling as soon
as the hit fraction is decided.  Before this module each technique
re-implemented that cascade by hand (MUNICH's bounding filter, the
MUNICH-DTW envelope bounds, the DTW pruning cascade's callers); the
planner extracts it into one composable pipeline:

* :class:`BoundStage` evaluates lower/upper bound stacks (from the
  engine-cached materializations) for every pair at once and decides the
  cells whose bounds clear the threshold;
* :class:`RefineStage` runs the technique's exact kernel on the
  surviving candidate mask;
* :class:`AdaptiveMCStage` replaces a fixed-sample-size Monte Carlo
  refinement with escalating rounds and a *sound* sequential stopping
  rule against ``ε``/``τ`` — see :func:`sequential_mc_decision`.

A :class:`QueryPlan` is an ordered tuple of stages;
:meth:`QueryPlan.execute` runs them over one ``(M, N)`` workload and
returns the score matrix together with :class:`PruningStats` — how many
candidates each stage decided, how many exact refinements ran, how many
Monte Carlo samples were evaluated, and per-stage wall time.  Techniques
build their plans in :meth:`~repro.queries.techniques.Technique.build_plan`;
the default plan is a single :class:`RefineStage`, which is exactly the
pre-planner behaviour — custom :class:`Technique` subclasses keep
working unchanged.

The adaptive stopping rule
--------------------------

A fixed-``s`` Monte Carlo refinement draws ``s`` materialization pairs
and reports the hit fraction ``H/s``; the decision query compares it to
``τ``.  After evaluating only the first ``m`` draws with ``h`` hits, the
final count is bracketed by ``h <= H <= h + (s - m)``, so

* ``h / s >= τ``  ⇒  the pair is a **hit** no matter how the remaining
  draws land;
* ``(h + s - m) / s < τ``  ⇒  a **miss**, likewise unconditionally.

Both checks use the same float divisions the fixed path uses, and
``H/s`` is monotone in ``H``, so an early verdict can *never* disagree
with the fixed-``s`` verdict on the same seeded draws — the rule prunes
work, not correctness.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError

#: Kinds of score matrices a plan can produce.
PLAN_KINDS = ("distance", "probability", "calibration")

#: First adaptive round evaluates this fraction of the draw budget;
#: every later round doubles the cumulative target.  Geometric
#: escalation bounds the kernel-call overhead at ``log2(1/fraction)+1``
#: rounds while guaranteeing at most 2× the draws an ideal stopping
#: point would have evaluated.
ADAPTIVE_MC_FIRST_FRACTION = 1.0 / 16.0


def adaptive_mc_schedule(
    n_samples: int, first_fraction: float = ADAPTIVE_MC_FIRST_FRACTION
) -> List[int]:
    """Cumulative evaluation targets for the escalating sample rounds.

    Returns a strictly increasing list ending at ``n_samples``: the
    first target is ``ceil(n_samples · first_fraction)`` and each
    subsequent round doubles it, so a verdict reachable after ``t``
    draws costs at most ``2t`` — with only ``O(log)`` stacked kernel
    calls of overhead.
    """
    if n_samples < 1:
        raise InvalidParameterError(
            f"n_samples must be >= 1, got {n_samples}"
        )
    if not 0.0 < first_fraction <= 1.0:
        raise InvalidParameterError(
            f"first_fraction must be in (0, 1], got {first_fraction}"
        )
    targets: List[int] = []
    target = max(1, math.ceil(n_samples * first_fraction))
    while target < n_samples:
        targets.append(target)
        target = min(n_samples, target * 2)
    targets.append(n_samples)
    return targets


def sequential_mc_decision(
    hits: int, evaluated: int, n_samples: int, tau: float
) -> Optional[Tuple[bool, float]]:
    """Sound early verdict for a Monte Carlo decision query.

    ``hits`` of the first ``evaluated`` (of ``n_samples``) seeded draws
    landed within ε.  Returns ``(is_hit, value)`` when the final
    fixed-``s`` verdict is already determined, ``None`` while it is
    still open; ``value`` is the tightest bound on the final hit
    fraction that is guaranteed to sit on the verdict's side of ``τ``
    (and is exactly ``hits / n_samples`` once everything is evaluated).
    """
    guaranteed = hits / n_samples
    if guaranteed >= tau:
        return True, guaranteed
    possible = (hits + (n_samples - evaluated)) / n_samples
    if possible < tau:
        return False, possible
    return None


@dataclass(frozen=True)
class StageStats:
    """One plan stage's contribution to a workload.

    ``entered`` counts the undecided cells the stage received (its
    *visited* set), ``skipped`` the cells earlier stages already settled
    so this stage never saw, ``decided`` how many of the visited cells
    it settled, ``refined`` how many exact kernel evaluations ran, and
    ``samples_drawn`` how many Monte Carlo draws were actually
    *evaluated* (the expensive part — the integer draws themselves are
    free and always taken upfront for seed parity).
    """

    stage: str
    entered: int = 0
    decided: int = 0
    refined: int = 0
    samples_drawn: int = 0
    skipped: int = 0
    seconds: float = 0.0

    @property
    def visited(self) -> int:
        """Cells this stage actually visited (alias for ``entered``)."""
        return self.entered

    def merged(self, other: "StageStats") -> "StageStats":
        """Element-wise sum with another shard's stats for this stage."""
        return StageStats(
            stage=self.stage,
            entered=self.entered + other.entered,
            decided=self.decided + other.decided,
            refined=self.refined + other.refined,
            samples_drawn=self.samples_drawn + other.samples_drawn,
            skipped=self.skipped + other.skipped,
            seconds=self.seconds + other.seconds,
        )


@dataclass(frozen=True)
class PruningStats:
    """Filter-and-refine effectiveness of one executed plan.

    ``stages`` preserves execution order; on a sharded run the per-shard
    stats are merged stage-by-stage and the executor's chosen shard plan
    is logged in ``executor``.
    """

    technique_name: str
    kind: str
    n_queries: int
    n_candidates: int
    stages: Tuple[StageStats, ...] = ()
    executor: Optional[Dict] = None
    #: Explicit cell count for records aggregated across *different*
    #: workloads (the CLI's per-command roll-up), where ``M × N`` of any
    #: single workload no longer describes the total.
    cells: Optional[int] = None

    @property
    def total_cells(self) -> int:
        """Workload size (``M × N``, unless explicitly overridden)."""
        if self.cells is not None:
            return self.cells
        return self.n_queries * self.n_candidates

    @property
    def total_seconds(self) -> float:
        """Wall time summed over every stage."""
        return float(sum(entry.seconds for entry in self.stages))

    @property
    def samples_drawn(self) -> int:
        """Monte Carlo draws evaluated across all stages."""
        return int(sum(entry.samples_drawn for entry in self.stages))

    def decided_by(self, stage: str) -> int:
        """Cells decided by the named stage (0 when absent)."""
        return sum(
            entry.decided for entry in self.stages if entry.stage == stage
        )

    def stage(self, name: str) -> Optional[StageStats]:
        """The (merged) stats entry for one stage name, if present."""
        for entry in self.stages:
            if entry.stage == name:
                return entry
        return None

    @property
    def index_selectivity(self) -> Optional[float]:
        """Fraction of cells the summarization index kept as candidates.

        ``None`` when no index stage ran (or the workload had no cells);
        ``1.0`` means the index pruned nothing.
        """
        entry = self.stage("index")
        if entry is None or self.total_cells <= 0:
            return None
        return 1.0 - entry.decided / self.total_cells

    def merged(self, other: "PruningStats") -> "PruningStats":
        """Combine with another shard of the same plan.

        Stages are summed by name in this record's order; stages only
        the other shard ran (a technique may plan differently per
        shard in degenerate cases) are appended.
        """
        pending: Dict[str, List[StageStats]] = {}
        for entry in other.stages:
            pending.setdefault(entry.stage, []).append(entry)
        merged: List[StageStats] = []
        for entry in self.stages:
            for extra in pending.pop(entry.stage, []):
                entry = entry.merged(extra)
            merged.append(entry)
        for extras in pending.values():
            merged.extend(extras)
        return PruningStats(
            technique_name=self.technique_name,
            kind=self.kind,
            n_queries=self.n_queries,
            n_candidates=self.n_candidates,
            stages=tuple(merged),
            executor=self.executor if self.executor else other.executor,
        )

    @staticmethod
    def merge_shards(
        shards: Sequence["PruningStats"],
        n_queries: int,
        n_candidates: int,
        executor: Optional[Dict] = None,
    ) -> Optional["PruningStats"]:
        """Merge per-shard stats into one workload-level record."""
        shards = [s for s in shards if s is not None]
        if not shards:
            return None
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merged(shard)
        return replace(
            merged,
            n_queries=n_queries,
            n_candidates=n_candidates,
            executor=executor,
        )

    def summary(self) -> str:
        """One human-readable line per stage (the CLI's ``--stats`` view)."""
        total = max(self.total_cells, 1)
        if self.cells is not None:
            shape = f"{self.cells} cells"
        else:
            shape = f"{self.n_queries}x{self.n_candidates}"
        lines = [f"{self.technique_name} ({self.kind}, {shape}):"]
        for entry in self.stages:
            line = (
                f"  {entry.stage:12s} decided {entry.decided}/{total} "
                f"({100.0 * entry.decided / total:5.1f}%) "
                f"in {entry.seconds * 1e3:8.2f} ms"
            )
            if entry.skipped:
                line += (
                    f", visited {entry.visited}, skipped {entry.skipped}"
                )
            if entry.refined:
                line += f", {entry.refined} refined"
            if entry.samples_drawn:
                line += f", {entry.samples_drawn} MC samples"
            lines.append(line)
        selectivity = self.index_selectivity
        if selectivity is not None:
            kept = total - self.decided_by("index")
            lines.append(
                f"  index selectivity {kept}/{total} candidates kept "
                f"({100.0 * selectivity:5.1f}%)"
            )
        if self.executor:
            pairs = ", ".join(
                f"{key}={value}" for key, value in self.executor.items()
            )
            lines.append(f"  executor     {pairs}")
        return "\n".join(lines)


@dataclass
class PlanContext:
    """Mutable state one plan execution threads through its stages."""

    technique: "object"
    kind: str
    queries: Sequence
    collection: Sequence
    epsilons: Optional[np.ndarray]
    tau: Optional[float]
    values: np.ndarray
    undecided: np.ndarray
    #: Top-k target for kNN workloads — lets the index stage derive
    #: per-row pruning thresholds from upper bounds.  ``exclude`` marks
    #: at most one self-match column per row (``-1`` for none).
    knn_k: Optional[int] = None
    exclude: Optional[np.ndarray] = None
    stage_stats: List[StageStats] = field(default_factory=list)

    @property
    def n_undecided(self) -> int:
        """Cells still awaiting a verdict."""
        return int(np.count_nonzero(self.undecided))


class PlanStage(abc.ABC):
    """One step of a filter-and-refine cascade.

    A stage reads the context's ``undecided`` mask, writes verdicts into
    ``values`` for the cells it settles, clears those cells from the
    mask, and returns ``(refined, samples_drawn)`` accounting.  Stage
    timing and decided-cell counting are handled by
    :meth:`QueryPlan.execute`.
    """

    name: str = "stage"

    @abc.abstractmethod
    def run(self, context: PlanContext) -> Tuple[int, int]:
        """Execute the stage; returns ``(refined, samples_drawn)``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BoundStage(PlanStage):
    """Decide cells whose lower/upper distance bounds clear ε.

    The technique supplies ``matrix_bounds(queries, collection)`` —
    ``(lower, upper)`` stacks valid for *every* materialization of each
    pair, computed from engine-cached stacks (bounding intervals,
    band-inflated envelopes).  Cells with ``lower > ε`` are certain
    misses (probability 0), cells with ``upper <= ε`` certain hits
    (probability 1); ``slack`` guards the comparisons for techniques
    whose batched bound sums may reorder floats (MUNICH-DTW uses
    :data:`~repro.distances.dtw_batch.PRUNE_SLACK`).
    """

    name = "bounds"

    def __init__(self, slack: float = 0.0) -> None:
        if slack < 0.0:
            raise InvalidParameterError(f"slack must be >= 0, got {slack}")
        self.slack = slack

    def run(self, context: PlanContext) -> Tuple[int, int]:
        if context.kind != "probability" or context.epsilons is None:
            raise InvalidParameterError(
                "BoundStage requires a probability workload with epsilons"
            )
        lower, upper = context.technique.matrix_bounds(
            context.queries, context.collection
        )
        guard_hi = (context.epsilons * (1.0 + self.slack))[:, None]
        guard_lo = (context.epsilons * (1.0 - self.slack))[:, None]
        misses = context.undecided & (lower > guard_hi)
        hits = context.undecided & (upper <= guard_lo)
        context.values[misses] = 0.0
        context.values[hits] = 1.0
        context.undecided &= ~(misses | hits)
        return 0, 0

    def __repr__(self) -> str:
        return f"BoundStage(slack={self.slack:g})"


class RefineStage(PlanStage):
    """Run the technique's exact kernel on the surviving mask.

    Delegates to
    :meth:`~repro.queries.techniques.Technique.refine_matrix`, which
    must fill every still-undecided cell; a refine stage therefore
    always terminates the plan's undecided set.
    """

    name = "refine"
    #: Whether the context's τ is forwarded to the refine kernel
    #: (enables the adaptive stopping rule in the subclass).
    forward_tau = False

    def run(self, context: PlanContext) -> Tuple[int, int]:
        tau = context.tau if self.forward_tau else None
        refined, samples = context.technique.refine_matrix(
            context.kind,
            context.queries,
            context.collection,
            context.epsilons,
            context.values,
            context.undecided,
            tau=tau,
        )
        context.undecided[:] = False
        return int(refined), int(samples)


class AdaptiveMCStage(RefineStage):
    """Monte Carlo refinement with the sequential stopping rule.

    Identical to :class:`RefineStage` except that the decision
    threshold ``τ`` is forwarded to the technique's refine kernel, which
    evaluates the seeded draw stack in escalating rounds
    (:func:`adaptive_mc_schedule`) and stops as soon as
    :func:`sequential_mc_decision` settles the cell.  Reported values
    are guaranteed to sit on the same side of ``τ`` as the fixed-sample
    path's, so decision queries (``prob_range``) are unchanged — only
    cheaper.
    """

    name = "adaptive-mc"
    forward_tau = True


class QueryPlan:
    """An ordered filter-and-refine cascade over one ``(M, N)`` workload."""

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[PlanStage]) -> None:
        if not stages:
            raise InvalidParameterError("a query plan needs >= 1 stage")
        self.stages = tuple(stages)

    def execute(
        self,
        technique,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon=None,
        tau: Optional[float] = None,
        knn_k: Optional[int] = None,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, PruningStats]:
        """Run the cascade; returns ``(values, stats)``.

        ``epsilon`` (scalar or per-query vector) is required for
        probability workloads; for *distance* workloads it optionally
        marks a decision-mode range query, letting index stages retire
        certain non-matches as ``+inf`` instead of materializing them.
        ``tau`` is the optional decision threshold adaptive stages stop
        against; ``knn_k``/``exclude`` describe a top-k workload the
        same way (pruned cells become ``+inf``; ``exclude`` holds each
        row's self-match column, ``-1`` for none).
        """
        from .techniques import _epsilon_vector

        if kind not in PLAN_KINDS:
            raise InvalidParameterError(
                f"kind must be one of {PLAN_KINDS}, got {kind!r}"
            )
        n_queries = len(queries)
        n_candidates = len(collection)
        if kind == "probability":
            epsilons = _epsilon_vector(epsilon, n_queries)
        elif kind == "distance" and epsilon is not None:
            epsilons = _epsilon_vector(epsilon, n_queries)
        elif epsilon is not None:
            raise InvalidParameterError(f"{kind} plans take no epsilon")
        else:
            epsilons = None
        if knn_k is not None:
            if kind != "distance":
                raise InvalidParameterError(
                    f"knn_k applies to distance plans only, got {kind!r}"
                )
            if knn_k < 1:
                raise InvalidParameterError(
                    f"knn_k must be >= 1, got {knn_k}"
                )
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.intp)
            if exclude.shape != (n_queries,):
                raise InvalidParameterError(
                    f"exclude must hold one index per query row, got "
                    f"shape {exclude.shape} for {n_queries} rows"
                )
        values = np.empty((n_queries, n_candidates))
        if n_queries == 0:
            return values, PruningStats(
                technique_name=technique.name,
                kind=kind,
                n_queries=0,
                n_candidates=n_candidates,
                stages=tuple(
                    StageStats(stage=stage.name) for stage in self.stages
                ),
            )
        context = PlanContext(
            technique=technique,
            kind=kind,
            queries=queries,
            collection=collection,
            epsilons=epsilons,
            tau=tau,
            values=values,
            undecided=np.ones((n_queries, n_candidates), dtype=bool),
            knn_k=knn_k,
            exclude=exclude,
        )
        total_cells = n_queries * n_candidates
        for stage in self.stages:
            entered = context.n_undecided
            started = time.perf_counter()
            refined, samples = stage.run(context)
            elapsed = time.perf_counter() - started
            context.stage_stats.append(
                StageStats(
                    stage=stage.name,
                    entered=entered,
                    decided=entered - context.n_undecided,
                    refined=refined,
                    samples_drawn=samples,
                    skipped=total_cells - entered,
                    seconds=elapsed,
                )
            )
        if context.n_undecided:
            raise InvalidParameterError(
                f"plan {self!r} left {context.n_undecided} cells undecided; "
                f"every plan must end in a refine stage"
            )
        return values, PruningStats(
            technique_name=technique.name,
            kind=kind,
            n_queries=n_queries,
            n_candidates=n_candidates,
            stages=tuple(context.stage_stats),
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(stage) for stage in self.stages)
        return f"QueryPlan([{inner}])"
