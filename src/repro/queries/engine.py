"""Batch query engine: per-collection materializations for vectorized queries.

Architecture note
-----------------

Every similarity workload in the repo — the harness scoring loops, the
ε-calibration protocol, kNN, and range queries — asks one question many
times: *"score one query against every series of a collection"*.  Answering
it pair-by-pair pays a Python-interpreter round-trip per candidate.  The
batch engine removes that overhead in two pieces:

* :class:`CollectionMaterialization` turns one collection into the dense
  NumPy arrays the vectorized kernels consume — the ``(N, n)`` observation
  matrix, per-filter filtered matrices (UMA/UEMA), the error-model *code*
  matrix that groups DUST's lookup-table applications, per-timestamp error
  variances (PROUD), and sample/bounding-interval stacks (MUNICH).  Every
  array is built lazily, at most once.
* :class:`QueryEngine` owns those materializations, keyed by collection
  identity.  Unlike the earlier per-technique ``id(series)`` dicts, the
  engine holds a **strong reference** to each keyed collection, so a key
  can never be silently reused after garbage collection (the stale-cache
  hazard).  Capacity is bounded: the least recently used collection is
  evicted — together with its strong reference — once the bound is hit.

Consumers reach the engine through
:meth:`repro.queries.techniques.Technique.distance_profile` /
``probability_profile``, which every concrete technique overrides with a
truly vectorized kernel; the default implementations fall back to the
per-pair methods, so third-party techniques keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError, LengthMismatchError
from ..core.series import TimeSeries
from ..core.uncertain import (
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)
from ..distances.filtered import FilteredEuclidean
from ..distributions.base import ErrorDistribution

#: Default number of collections an engine keeps materialized at once.
DEFAULT_MAX_COLLECTIONS = 8


def _stack(rows: List[np.ndarray]) -> np.ndarray:
    """``np.vstack`` with the repo's error type for ragged collections."""
    lengths = {row.shape[-1] for row in rows}
    if len(lengths) > 1:
        raise LengthMismatchError(
            max(lengths), min(lengths),
            "collection materialization (all series must share one length)",
        )
    return np.vstack(rows)


def _downcast(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """``(float32 copy, scale)`` of one stack — the low-precision tier.

    ``scale`` is the stack's largest absolute value, measured in float64
    *before* the downcast: float32 rounding is absolute in data
    magnitude (≈ ``6e-8 · scale`` per element), so consumers derive the
    admissible widening margin for float32 bounds from it.
    """
    scale = float(np.abs(matrix).max()) if matrix.size else 0.0
    return matrix.astype(np.float32), scale


def _point_estimate(item) -> np.ndarray:
    """One value per timestamp, mirroring ``Collection.values_matrix``."""
    if isinstance(item, UncertainTimeSeries):
        return item.observations
    if isinstance(item, TimeSeries):
        return item.values
    if isinstance(item, MultisampleUncertainTimeSeries):
        return item.means()
    return np.asarray(item, dtype=np.float64)


class CollectionMaterialization:
    """Lazily-built dense views of one collection of series.

    The materialization keeps a strong reference to the collection it was
    built from (``self.collection``), which is what makes identity-keyed
    caching sound: the key ``id(collection)`` cannot be recycled while the
    entry is alive.
    """

    __slots__ = (
        "collection",
        "_frozen",
        "_items",
        "_values",
        "_variances",
        "_filtered",
        "_model_codes",
        "_sample_columns",
        "_bounds",
        "_samples_tensor",
        "_envelopes",
        "_summaries",
        "_low_precision",
    )

    def __init__(self, collection: Sequence) -> None:
        self.collection = collection
        # Snapshot of the members at materialization time.  The strong
        # references pin each item, so is_current() can compare by identity
        # without id-recycling false positives; a caller that mutates the
        # collection in place (append / replace / remove) is detected and
        # the engine rebuilds instead of serving stale arrays.
        self._items = list(collection)
        self._frozen = bool(getattr(collection, "immutable_items", False))
        self._values: np.ndarray = None
        self._variances: np.ndarray = None
        self._filtered: Dict[Hashable, np.ndarray] = {}
        self._model_codes: Tuple[np.ndarray, Tuple[ErrorDistribution, ...]] = None
        self._sample_columns: Dict[int, np.ndarray] = {}
        self._bounds: Tuple[np.ndarray, np.ndarray] = None
        self._samples_tensor: np.ndarray = None
        self._envelopes: Dict[Optional[int], Tuple[np.ndarray, np.ndarray]] = {}
        self._summaries: Dict[Hashable, object] = {}
        #: Float32 tier: downcast stacks + their float64 magnitude scale,
        #: keyed like the float64 caches they mirror.
        self._low_precision: Dict[Hashable, Tuple] = {}

    def __len__(self) -> int:
        return len(self.collection)

    def is_current(self) -> bool:
        """Whether the collection still holds exactly the snapshotted items.

        O(N) identity comparisons — negligible next to any batch kernel.
        (In-place mutation of a *series'* internal arrays is not detected;
        series are treated as immutable value holders, as everywhere else
        in the library.)
        """
        if len(self.collection) != len(self._items):
            return False
        if self._frozen:
            # Mapped collections declare their item list immutable
            # (``immutable_items``): the maps are read-only views, so the
            # O(N) identity scan — measurable at 10^6 series — is skipped.
            return True
        return all(
            item is snapshot
            for item, snapshot in zip(self.collection, self._items)
        )

    def _mapped(self, attribute: str) -> np.ndarray:
        """A memory-mapped matrix provided by the collection, if any.

        :class:`~repro.core.mmapio.MappedCollection` exposes its on-disk
        matrices as ``mapped_values`` / ``mapped_variances`` /
        ``mapped_samples``; adopting them warms this cache zero-copy —
        the kernels then stream pages straight off the map instead of
        re-stacking per-series rows into fresh RAM.
        """
        return getattr(self.collection, attribute, None)

    def values_matrix(self) -> np.ndarray:
        """``(N, n)`` matrix of point estimates (observations / values /
        per-timestamp sample means, by series kind)."""
        if self._values is None:
            mapped = self._mapped("mapped_values")
            if mapped is not None:
                self._values = mapped
            else:
                self._values = _stack([
                    _point_estimate(item) for item in self._items
                ])
        return self._values

    def variances_matrix(self) -> np.ndarray:
        """``(N, n)`` matrix of reported per-timestamp error variances."""
        if self._variances is None:
            mapped = self._mapped("mapped_variances")
            if mapped is not None:
                self._variances = mapped
            else:
                self._variances = _stack([
                    item.error_model.variances() for item in self._items
                ])
        return self._variances

    def filtered_matrix(self, filtered: FilteredEuclidean) -> np.ndarray:
        """``(N, n)`` matrix of the collection filtered by ``filtered``.

        One row per series; every series is filtered exactly once per
        filter configuration (the :class:`FilteredEuclidean` value object
        is the key).
        """
        matrix = self._filtered.get(filtered)
        if matrix is None:
            matrix = _stack([
                filtered.filter_uncertain(item) for item in self._items
            ])
            self._filtered[filtered] = matrix
        return matrix

    def model_codes(
        self,
    ) -> Tuple[np.ndarray, Tuple[ErrorDistribution, ...]]:
        """Integer codes of every series' per-timestamp error distribution.

        Returns ``(codes, distincts)`` where ``codes`` is an ``(N, n)``
        integer matrix and ``distincts[codes[j, i]]`` is series ``j``'s
        error distribution at timestamp ``i``.  DUST's batch kernel groups
        table applications by these codes, so a homogeneous collection
        costs a single vectorized lookup.
        """
        if self._model_codes is None:
            mapping: Dict[ErrorDistribution, int] = {}
            n_series = len(self._items)
            length = len(self._items[0]) if n_series else 0
            codes = np.empty((n_series, length), dtype=np.intp)
            for row, item in enumerate(self._items):
                model = item.error_model
                if model.is_homogeneous:
                    distribution = model[0]
                    code = mapping.setdefault(distribution, len(mapping))
                    codes[row, :] = code
                else:
                    codes[row, :] = [
                        mapping.setdefault(d, len(mapping)) for d in model
                    ]
            self._model_codes = (codes, tuple(mapping))
        return self._model_codes

    def sample_column_matrix(self, column: int = 0) -> np.ndarray:
        """``(N, n)`` matrix of multisample series' ``column``-th draws.

        Column 0 is the paper's "single observation" view of a repeated-
        observation series (MUNICH's ε_eucl calibration).
        """
        matrix = self._sample_columns.get(column)
        if matrix is None:
            mapped = self._mapped("mapped_samples")
            if mapped is not None:
                matrix = mapped[:, :, column]
            else:
                matrix = _stack([
                    item.samples[:, column] for item in self._items
                ])
            self._sample_columns[column] = matrix
        return matrix

    def samples_tensor(self) -> Optional[np.ndarray]:
        """``(N, n, s)`` stacked multisample draws, or ``None`` when the
        collection's per-timestamp sample counts are ragged.

        The batched MUNICH convolution slices undecided candidates out of
        this tensor in one shot; ragged collections fall back to the
        per-pair evaluator.
        """
        if self._samples_tensor is None:
            mapped = self._mapped("mapped_samples")
            if mapped is not None:
                self._samples_tensor = mapped
            else:
                shapes = {item.samples.shape for item in self._items}
                if len(shapes) != 1:
                    self._samples_tensor = False
                else:
                    self._samples_tensor = np.stack(
                        [item.samples for item in self._items]
                    )
        return None if self._samples_tensor is False else self._samples_tensor

    def dtw_envelopes(
        self, window: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Band-inflated LB_Keogh envelopes of the bounding intervals.

        ``(lower, upper)``, each ``(N, n)``: the rolling min of the
        per-timestamp interval lows / rolling max of the highs over the
        Sakoe–Chiba half-width (``None`` = full length).  Every
        materialization of series ``j`` lies inside its envelope row, so
        one cached stack bounds the banded DTW of *every* sample draw —
        MUNICH-DTW's collection-level pruning stage.
        """
        cached = self._envelopes.get(window)
        if cached is None:
            from ..distances.dtw_batch import keogh_envelope_stack

            low, high = self.bounding_matrices()
            effective = low.shape[1] if window is None else window
            lower, _ = keogh_envelope_stack(low, effective)
            _, upper = keogh_envelope_stack(high, effective)
            cached = (lower, upper)
            self._envelopes[window] = cached
        return cached

    def bounding_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked minimal bounding intervals: ``(low, high)``, each
        ``(N, n)`` (MUNICH's summarization structures, Section 2.1)."""
        if self._bounds is None:
            mapped = self._mapped("mapped_samples")
            if mapped is not None:
                self._bounds = (mapped.min(axis=2), mapped.max(axis=2))
            else:
                lows: List[np.ndarray] = []
                highs: List[np.ndarray] = []
                for item in self._items:
                    low, high = item.bounding_intervals()
                    lows.append(low)
                    highs.append(high)
                self._bounds = (_stack(lows), _stack(highs))
        return self._bounds

    def values_matrix32(self) -> Tuple[np.ndarray, float]:
        """``(float32 values matrix, scale)`` — the low-precision tier.

        Adopts a persisted warm tier
        (:func:`~repro.core.mmapio.build_warm_cache` →
        ``mapped_warm["values32"]``) zero-copy when present, so daemons
        restart without re-downcasting.
        """
        key = "values"
        cached = self._low_precision.get(key)
        if cached is None:
            warm = self._mapped("mapped_warm")
            if warm is not None and "values32" in warm:
                cached = (
                    warm["values32"],
                    float(warm.get("values_scale", 0.0)),
                )
            else:
                cached = _downcast(self.values_matrix())
            self._low_precision[key] = cached
        return cached

    def bounding_matrices32(self) -> Tuple[np.ndarray, np.ndarray, float]:
        """``(low32, high32, scale)`` — float32 bounding-interval tier.

        Bound stages stream these at half the bytes of the float64
        stacks; ``scale`` (the stacks' float64 magnitude bound, also
        persisted with warm tiers) lets techniques widen the resulting
        bounds admissibly so no verdict can flip.
        """
        key = "bounds"
        cached = self._low_precision.get(key)
        if cached is None:
            warm = self._mapped("mapped_warm")
            if warm is not None and "bounds_low32" in warm:
                cached = (
                    warm["bounds_low32"],
                    warm["bounds_high32"],
                    float(warm.get("bounds_scale", 0.0)),
                )
            else:
                low, high = self.bounding_matrices()
                low32, low_scale = _downcast(low)
                high32, high_scale = _downcast(high)
                cached = (low32, high32, max(low_scale, high_scale))
            self._low_precision[key] = cached
        return cached

    def dtw_envelopes32(
        self, window: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """``(lower32, upper32, scale)`` — float32 DTW-envelope tier.

        Downcast of :meth:`dtw_envelopes` (the envelopes themselves are
        built in float64, so the only float32 error is the final
        rounding, covered by the techniques' widening margin).
        """
        key = ("envelopes", window)
        cached = self._low_precision.get(key)
        if cached is None:
            lower, upper = self.dtw_envelopes(window)
            lower32, low_scale = _downcast(lower)
            upper32, up_scale = _downcast(upper)
            cached = (lower32, upper32, max(low_scale, up_scale))
            self._low_precision[key] = cached
        return cached

    def _mapped_index(self, n_segments: int) -> Optional[Dict]:
        """The collection's persisted index tables, when geometry matches.

        :func:`~repro.core.mmapio.build_index` stores segment-mean /
        residual arrays next to the mmap manifest;
        :class:`~repro.core.mmapio.MappedCollection` exposes them as
        ``mapped_index``.  Adopting them here makes index pruning at
        scale zero-copy — the summary tables are never recomputed.
        """
        mapped = self._mapped("mapped_index")
        if mapped is not None and mapped.get("segments") == n_segments:
            return mapped
        return None

    def paa_summary(self, n_segments: int):
        """Cached :class:`~repro.core.summaries.PointSummary` of the
        point-estimate matrix (Euclidean-family index geometry)."""
        from ..core.summaries import (
            PointSummary,
            effective_segments,
            segment_widths,
            summarize_values,
        )

        values = self.values_matrix()
        n_segments = effective_segments(n_segments, values.shape[1])
        key = ("values", n_segments)
        cached = self._summaries.get(key)
        if cached is None:
            mapped = self._mapped_index(n_segments)
            if mapped is not None and "means" in mapped:
                cached = PointSummary(
                    means=mapped["means"],
                    residuals=mapped["residuals"],
                    widths=segment_widths(values.shape[1], n_segments),
                    length=values.shape[1],
                )
                if "norms" in mapped:
                    object.__setattr__(
                        cached, "_norms_cache", mapped["norms"]
                    )
            else:
                cached = summarize_values(values, n_segments)
            self._summaries[key] = cached
        return cached

    def filtered_paa_summary(
        self, filtered: FilteredEuclidean, n_segments: int
    ):
        """Cached :class:`~repro.core.summaries.PointSummary` of one
        filtered matrix (UMA/UEMA operate on filtered values, so their
        index must summarize the same)."""
        from ..core.summaries import effective_segments, summarize_values

        matrix = self.filtered_matrix(filtered)
        n_segments = effective_segments(n_segments, matrix.shape[1])
        key = ("filtered", filtered, n_segments)
        cached = self._summaries.get(key)
        if cached is None:
            cached = summarize_values(matrix, n_segments)
            self._summaries[key] = cached
        return cached

    def interval_paa_summary(self, n_segments: int):
        """Cached :class:`~repro.core.summaries.IntervalSummary` of the
        bounding-interval stacks (MUNICH's index geometry)."""
        from ..core.summaries import (
            IntervalSummary,
            effective_segments,
            segment_widths,
            summarize_intervals,
        )

        length = len(self._items[0]) if self._items else 0
        n_segments = effective_segments(n_segments, length)
        key = ("intervals", n_segments)
        cached = self._summaries.get(key)
        if cached is None:
            mapped = self._mapped_index(n_segments)
            if mapped is not None and "low_means" in mapped:
                # Adopt the persisted tables without forcing the O(N·n·s)
                # min/max scan bounding_matrices() would run on the samples.
                cached = IntervalSummary(
                    low_means=mapped["low_means"],
                    high_means=mapped["high_means"],
                    widths=segment_widths(length, n_segments),
                    length=length,
                )
            else:
                low, high = self.bounding_matrices()
                cached = summarize_intervals(low, high, n_segments)
            self._summaries[key] = cached
        return cached

    def envelope_paa_summary(self, window: Optional[int], n_segments: int):
        """Cached :class:`~repro.core.summaries.IntervalSummary` of the
        band-inflated DTW envelopes (MUNICH-DTW's index geometry)."""
        from ..core.summaries import effective_segments, summarize_intervals

        lower, upper = self.dtw_envelopes(window)
        n_segments = effective_segments(n_segments, lower.shape[1])
        key = ("envelopes", window, n_segments)
        cached = self._summaries.get(key)
        if cached is None:
            cached = summarize_intervals(lower, upper, n_segments)
            self._summaries[key] = cached
        return cached


class QueryEngine:
    """Identity-keyed cache of :class:`CollectionMaterialization` objects.

    Parameters
    ----------
    max_collections:
        How many distinct collections stay materialized; the least
        recently used entry (and its strong collection reference) is
        dropped beyond this.  The harness touches at most two collections
        per run (pdf and multisample forms), so the default is generous.
    """

    def __init__(self, max_collections: int = DEFAULT_MAX_COLLECTIONS) -> None:
        if max_collections < 1:
            raise InvalidParameterError(
                f"max_collections must be >= 1, got {max_collections}"
            )
        self.max_collections = max_collections
        self._entries: Dict[int, CollectionMaterialization] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def materialize(self, collection: Sequence) -> CollectionMaterialization:
        """Fetch (building on first use) the materialization of a collection.

        The entry holds a strong reference to ``collection``: while it is
        cached, ``id(collection)`` cannot be recycled, so a hit is always
        the same object that was keyed.
        """
        key = id(collection)
        entry = self._entries.get(key)
        if entry is not None:
            if entry.is_current():
                # Move to the back of the (insertion-ordered) dict: LRU.
                del self._entries[key]
                self._entries[key] = entry
                return entry
            # The collection was mutated in place since materialization;
            # drop the stale entry and rebuild below.
            del self._entries[key]
        entry = CollectionMaterialization(collection)
        if len(self._entries) >= self.max_collections:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = entry
        return entry

    def clear(self) -> None:
        """Drop every materialization (and its collection reference)."""
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"QueryEngine(collections={len(self._entries)}, "
            f"max_collections={self.max_collections})"
        )


#: Engine shared by techniques that are not given their own (one per
#: process keeps Euclidean / PROUD / UMA reusing the same values matrix).
SHARED_ENGINE = QueryEngine()
