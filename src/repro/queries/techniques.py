"""Uniform technique adapters for the similarity-matching task.

The paper's comparison methodology (Section 4.1.2) evaluates heterogeneous
methods on one common task.  The harness talks to every method through the
:class:`Technique` interface:

* **distance techniques** (Euclidean, DUST, UMA, UEMA, …) expose
  ``distance(q, c)`` and answer a range query as ``distance <= ε``, with
  ``ε`` calibrated per query from the same method's distance to the 10th
  nearest neighbor;
* **probabilistic techniques** (PROUD, MUNICH) expose
  ``probability(q, c, ε)`` and answer ``probability >= τ``, with the common
  Euclidean ``ε_eucl`` ("since the distances in MUNICH and PROUD are based
  on the Euclidean distance, we will use the same threshold for both").

Exposing the raw probability (rather than just the boolean) lets the
evaluation layer sweep ``τ`` cheaply to find the paper's "optimal τ".
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from ..core.errors import InvalidParameterError, UnsupportedQueryError
from ..core.uncertain import (
    ErrorModel,
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)
from ..distances.filtered import FilteredEuclidean
from ..distances.lp import euclidean
from ..distributions import make_distribution
from ..dust.distance import Dust
from ..dust.tables import DustTableCache
from ..munich.query import Munich
from ..proud.query import Proud


class Technique(abc.ABC):
    """A similarity-matching method under the common evaluation protocol."""

    #: Display name used in result tables.
    name: str = "abstract"
    #: ``"distance"`` or ``"probabilistic"``.
    kind: str = "distance"
    #: ``"pdf"`` for single-observation input, ``"multisample"`` for MUNICH.
    input_kind: str = "pdf"

    def reset(self) -> None:
        """Drop any per-collection caches (called between datasets)."""

    def distance(self, query, candidate) -> float:
        """Distance value (distance techniques only)."""
        raise UnsupportedQueryError(f"{self.name} is not a distance technique")

    def probability(self, query, candidate, epsilon: float) -> float:
        """``Pr(distance <= ε)`` (probabilistic techniques only)."""
        raise UnsupportedQueryError(
            f"{self.name} is not a probabilistic technique"
        )

    def calibration_distance(self, query, candidate) -> float:
        """Distance used to derive this technique's ``ε`` from the 10th NN.

        Distance techniques use their own distance; probabilistic ones use
        Euclidean on the observations (the paper's ``ε_eucl``).
        """
        return self.distance(query, candidate)

    def matches(self, query, candidate, epsilon: float,
                tau: Optional[float] = None) -> bool:
        """Range-query predicate for one candidate."""
        if self.kind == "distance":
            return self.distance(query, candidate) <= epsilon
        if tau is None:
            raise InvalidParameterError(
                f"{self.name} requires a probability threshold tau"
            )
        return self.probability(query, candidate, epsilon) >= tau

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class EuclideanTechnique(Technique):
    """The baseline: Euclidean distance on the raw observations,
    ignoring every piece of uncertainty information (Section 4.1.2)."""

    name = "Euclidean"
    kind = "distance"

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return euclidean(query.observations, candidate.observations)


class DustTechnique(Technique):
    """DUST distance using each series' *reported* error model."""

    name = "DUST"
    kind = "distance"

    def __init__(self, cache: Optional[DustTableCache] = None,
                 tail_workaround: bool = True) -> None:
        self._dust = Dust(cache=cache, tail_workaround=tail_workaround)

    @property
    def dust(self) -> Dust:
        """The underlying :class:`~repro.dust.Dust` engine (shared tables)."""
        return self._dust

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return self._dust.distance(query, candidate)


class FilteredTechnique(Technique):
    """UMA / UEMA / MA / EMA: Euclidean over filtered sequences.

    Filtered versions of each series are cached by object identity, so a
    full query workload filters every series exactly once.
    """

    kind = "distance"

    def __init__(self, filtered: FilteredEuclidean) -> None:
        self.filtered = filtered
        self.name = filtered.name
        self._cache: Dict[int, np.ndarray] = {}

    @classmethod
    def uma(cls, window: int = 2) -> "FilteredTechnique":
        """UMA with the paper's default window ``w=2``."""
        return cls(FilteredEuclidean("uma", window=window))

    @classmethod
    def uema(cls, window: int = 2, decay: float = 1.0) -> "FilteredTechnique":
        """UEMA with the paper's defaults ``w=2, λ=1``."""
        return cls(FilteredEuclidean("uema", window=window, decay=decay))

    def reset(self) -> None:
        self._cache.clear()

    def _filtered_values(self, series: UncertainTimeSeries) -> np.ndarray:
        key = id(series)
        values = self._cache.get(key)
        if values is None:
            values = self.filtered.filter_uncertain(series)
            self._cache[key] = values
        return values

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return euclidean(
            self._filtered_values(query), self._filtered_values(candidate)
        )


class ProudTechnique(Technique):
    """PROUD under the harness protocol.

    PROUD "requires to know the standard deviation of the uncertainty
    error [...] constant across all timestamps" (Section 3.1).  When
    ``assumed_std`` is given, every series' error model is replaced by that
    constant-σ normal model — the knob the mixed-error experiments turn
    (σ=0.7 in Figures 8–10).  Otherwise the series' reported model is used
    as-is.
    """

    name = "PROUD"
    kind = "probabilistic"

    def __init__(
        self,
        assumed_std: Optional[float] = None,
        synopsis_coefficients: Optional[int] = None,
    ) -> None:
        # tau is supplied per matches() call by the harness; the default
        # here only matters for direct interactive use.
        self._proud = Proud(tau=0.5, synopsis_coefficients=synopsis_coefficients)
        self.assumed_std = assumed_std
        self._model_cache: Dict[int, UncertainTimeSeries] = {}

    def reset(self) -> None:
        self._model_cache.clear()

    def _with_assumed_model(
        self, series: UncertainTimeSeries
    ) -> UncertainTimeSeries:
        if self.assumed_std is None:
            return series
        key = id(series)
        cached = self._model_cache.get(key)
        if cached is None:
            model = ErrorModel.constant(
                make_distribution("normal", self.assumed_std), len(series)
            )
            cached = UncertainTimeSeries(
                series.observations, model,
                label=series.label, name=series.name,
            )
            self._model_cache[key] = cached
        return cached

    def probability(
        self,
        query: UncertainTimeSeries,
        candidate: UncertainTimeSeries,
        epsilon: float,
    ) -> float:
        return self._proud.match_probability(
            self._with_assumed_model(query),
            self._with_assumed_model(candidate),
            epsilon,
        )

    def calibration_distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return euclidean(query.observations, candidate.observations)


class MunichTechnique(Technique):
    """MUNICH under the harness protocol (multi-sample input)."""

    name = "MUNICH"
    kind = "probabilistic"
    input_kind = "multisample"

    def __init__(self, munich: Optional[Munich] = None) -> None:
        self._munich = munich if munich is not None else Munich(tau=0.5)

    @property
    def munich(self) -> Munich:
        """The underlying :class:`~repro.munich.Munich` engine."""
        return self._munich

    def probability(
        self,
        query: MultisampleUncertainTimeSeries,
        candidate: MultisampleUncertainTimeSeries,
        epsilon: float,
    ) -> float:
        return self._munich.probability(query, candidate, epsilon)

    def calibration_distance(
        self,
        query: MultisampleUncertainTimeSeries,
        candidate: MultisampleUncertainTimeSeries,
    ) -> float:
        # The paper's ε_eucl is "the Euclidean distance on the observations".
        # A multisample series' observation is one sample draw per timestamp
        # (column 0 — any fixed column is a single observation); using the
        # sample *means* instead would understate the noise inflation that
        # MUNICH's materialization distances carry, systematically deflating
        # its match probabilities.
        return euclidean(query.samples[:, 0], candidate.samples[:, 0])
