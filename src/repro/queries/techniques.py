"""Uniform technique adapters for the similarity-matching task.

The paper's comparison methodology (Section 4.1.2) evaluates heterogeneous
methods on one common task.  The harness talks to every method through the
:class:`Technique` interface:

* **distance techniques** (Euclidean, DUST, UMA, UEMA, …) expose
  ``distance(q, c)`` and answer a range query as ``distance <= ε``, with
  ``ε`` calibrated per query from the same method's distance to the 10th
  nearest neighbor;
* **probabilistic techniques** (PROUD, MUNICH) expose
  ``probability(q, c, ε)`` and answer ``probability >= τ``, with the common
  Euclidean ``ε_eucl`` ("since the distances in MUNICH and PROUD are based
  on the Euclidean distance, we will use the same threshold for both").

Exposing the raw probability (rather than just the boolean) lets the
evaluation layer sweep ``τ`` cheaply to find the paper's "optimal τ".

Batch API
---------

Each technique additionally answers *collection-level* queries through
:meth:`Technique.distance_profile` / :meth:`Technique.probability_profile`:
one call scores a query against every series of a collection and returns
the ``(N,)`` vector of distances or match probabilities.  The base-class
implementations fall back to the per-pair methods; every concrete
technique overrides them with a vectorized kernel backed by the
:class:`~repro.queries.engine.QueryEngine` materialization cache, which is
what makes the harness scoring loops, ε-calibration, kNN, and range
queries run at NumPy speed instead of one interpreter round-trip per
candidate.

Matrix API
----------

The full evaluation protocol (Section 4.1.2) makes *every* series of a
collection a query against all others — an ``(M, N)`` workload, not ``M``
independent rows.  :meth:`Technique.distance_matrix` /
:meth:`Technique.probability_matrix` answer it in one call:

* Euclidean / UMA / UEMA reduce to a single GEMM through the
  ``‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b`` identity over the cached (filtered)
  materialization matrices, with exact recomputation of near-duplicate
  entries where the expansion cancels;
* DUST applies its lookup tables to the whole ``(M, N, n)`` difference
  tensor, grouped by error-model code so a homogeneous run is one fused
  table application;
* PROUD broadcasts its moment algebra (Equations 5–7) over the query
  axis — under a constant assumed σ the moments are pure functions of the
  squared-Euclidean GEMM;
* MUNICH evaluates its bounding-interval filters for all pairs at once
  and pays the per-pair convolution only for the undecided middle.

``probability_matrix`` accepts one ε per query (or a scalar), matching
the protocol's per-query calibrated thresholds.  Base-class
implementations stack the row kernels, so custom techniques keep working;
tensor kernels process bounded query blocks to keep peak memory flat.
The declarative front door for all of this is
:class:`repro.queries.session.SimilaritySession`.

Query plans
-----------

Every matrix workload executes through a
:class:`~repro.queries.planner.QueryPlan` — the unified filter-and-refine
cascade.  :meth:`Technique.build_plan` names the stages (the default is a
single :class:`~repro.queries.planner.RefineStage`, i.e. the exact kernel
over every cell, so custom subclasses keep working unchanged); MUNICH
prepends a :class:`~repro.queries.planner.BoundStage` over its cached
bounding-interval stacks, MUNICH-DTW a slack-guarded one over its
band-inflated envelope stacks, and both swap the fixed-sample Monte Carlo
refinement for an :class:`~repro.queries.planner.AdaptiveMCStage` when a
decision threshold ``τ`` is known (``prob_range``).  The exact kernels
the plans refine with live in ``distance_kernel`` /
``probability_kernel`` / ``calibration_kernel`` / ``refine_matrix``;
:meth:`Technique.matrix_with_stats` returns the score matrix together
with the executed plan's :class:`~repro.queries.planner.PruningStats`.

Migration note for custom :class:`Technique` subclasses: a pre-planner
subclass that overrode ``distance_matrix`` / ``probability_matrix`` is
detected and its override is used as the refine kernel verbatim; such
overrides must not delegate back to ``super()``'s matrix methods (which
now run the plan) — override the ``*_kernel`` methods instead.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core import kernels
from ..core.errors import InvalidParameterError, UnsupportedQueryError
from ..core.summaries import (
    DEFAULT_SEGMENTS,
    interval_lower_bound,
    paa_lower_bound,
    paa_upper_bound,
    summarize_intervals,
    summarize_values,
)
from ..core.uncertain import (
    ErrorModel,
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)
from ..distances.dtw_batch import (
    PRUNE_SLACK,
    _use_rolling as _use_rolling_dtw,
    banded_dtw_from_costs,
    dtw_hits_paired,
    rolling_dtw_from_cost_fn,
    rolling_stack_blocks,
    stack_blocks,
)
from ..distances.filtered import FilteredEuclidean
from ..distances.lp import (
    euclidean,
    euclidean_matrix,
    euclidean_profile,
    squared_euclidean_matrix,
)
from ..distributions import make_distribution
from ..dust.distance import Dust
from ..dust.tables import DustTableCache
from ..munich.batch import convolved_probability_batch
from ..munich.bounds import interval_gap_and_span
from ..munich.exact import draw_materialization_pairs
from ..munich.query import Munich
from ..proud.query import Proud
from ..stats.normal import std_normal_cdf
from .engine import SHARED_ENGINE, QueryEngine, _point_estimate
from .index import IndexStage
from .planner import (
    AdaptiveMCStage,
    BoundStage,
    PlanPolicy,
    PruningStats,
    QueryPlan,
    RefineStage,
    adaptive_mc_schedule,
    effective_index_enabled,
    normalize_tau,
    plan_for_workload,
    resolve_policy,
    sequential_mc_decision,
    sequential_mc_verdict,
)

#: Element budget for one broadcast ``(B, N, n)`` block of a tensor matrix
#: kernel: 2^16 float64s ≈ 512 KB per temporary, so the dozen elementwise
#: passes of a DUST/PROUD/MUNICH block stay resident in L2 instead of
#: streaming the whole ``(M, N, n)`` tensor through DRAM once per pass
#: (measured ~2× faster than 8 MB blocks on the full-protocol workload),
#: while still amortizing per-block NumPy call overhead thousands of ways.
MATRIX_BLOCK_ELEMENTS = 1 << 16

#: Element budget for one batched Monte Carlo refinement block: bounds
#: the ``(cells · s, n)`` stacked draw tensors the MUNICH-DTW refine
#: stage pushes through one pruning-cascade call.
MC_BATCH_ELEMENTS = 1 << 20


def _query_blocks(n_queries: int, n_candidates: int, length: int):
    """Yield ``(start, stop)`` query-row blocks for tensor matrix kernels."""
    per_query = max(1, n_candidates * max(length, 1))
    block = max(1, MATRIX_BLOCK_ELEMENTS // per_query)
    for start in range(0, n_queries, block):
        yield start, min(start + block, n_queries)


def _epsilon_vector(epsilon, n_queries: int) -> np.ndarray:
    """Normalize a scalar or per-query ε into a validated ``(M,)`` vector."""
    eps = np.asarray(epsilon, dtype=np.float64)
    if eps.ndim == 0:
        eps = np.full(n_queries, float(eps))
    elif eps.shape != (n_queries,):
        raise InvalidParameterError(
            f"epsilon must be a scalar or a vector of {n_queries} per-query "
            f"thresholds, got shape {eps.shape}"
        )
    if eps.size and (np.any(eps < 0.0) or np.any(np.isnan(eps))):
        raise InvalidParameterError("every epsilon must be >= 0")
    return eps


def _query_bound_stacks(
    engine: QueryEngine, queries: Sequence
) -> Tuple[np.ndarray, np.ndarray]:
    """``(M, n)`` query-side bounding-interval stacks for a bound stage.

    Single-query workloads (the profile path builds a fresh one-item
    list per call) read the intervals directly so they don't churn the
    engine's LRU with throwaway materializations; everything larger
    goes through the engine and shares the cached stacks — in the full
    protocol the query side *is* the collection.
    """
    if len(queries) == 1:
        low, high = queries[0].bounding_intervals()
        return low[None, :], high[None, :]
    materialized = engine.materialize(queries)
    return materialized.bounding_matrices()


#: float32 unit roundoff — what the admissible widening margins scale by.
_FLOAT32_EPS = float(np.finfo(np.float32).eps)


def _float32_sum_slop(scale: float, length: int) -> float:
    """Admissible widening for a float32 squared-gap sum.

    Every float32 gap element carries absolute error ≲ ``4·u·V``
    (downcast rounding of both operands, the subtraction, and the max;
    ``u`` = float32 eps, ``V`` = the stacks' magnitude scale), so one
    squared term errs by ≲ ``20·u·V²``; the sums accumulate in float64,
    keeping the total at the per-term budget.  A flat ``32·n·u·V²``
    over-covers it — subtracting it from lower sums and adding it to
    upper sums keeps the float32 bounds admissible everywhere, at a
    ``~3e-6`` relative cost in pruning power.
    """
    return 32.0 * max(1, length) * _FLOAT32_EPS * scale * scale


def _query_bound_stacks32(
    engine: QueryEngine, queries: Sequence
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Float32 tier of :func:`_query_bound_stacks`, plus magnitude scale."""
    if len(queries) == 1:
        low, high = queries[0].bounding_intervals()
        scale = 0.0
        if low.size:
            scale = float(max(np.abs(low).max(), np.abs(high).max()))
        return (
            low.astype(np.float32)[None, :],
            high.astype(np.float32)[None, :],
            scale,
        )
    materialized = engine.materialize(queries)
    return materialized.bounding_matrices32()


def _query_point_summary(engine: QueryEngine, queries: Sequence, n_segments: int):
    """Query-side PAA summary, mirroring :func:`_query_bound_stacks`:
    single-query workloads summarize the row directly instead of churning
    a throwaway materialization through the engine's LRU."""
    if len(queries) == 1:
        return summarize_values(_point_estimate(queries[0])[None, :], n_segments)
    return engine.materialize(queries).paa_summary(n_segments)


def _query_interval_summary(
    engine: QueryEngine, queries: Sequence, n_segments: int
):
    """Query-side bounding-interval PAA summary (MUNICH-family index)."""
    if len(queries) == 1:
        low, high = queries[0].bounding_intervals()
        return summarize_intervals(low[None, :], high[None, :], n_segments)
    return engine.materialize(queries).interval_paa_summary(n_segments)


def _sparse_euclidean_refine(
    query_matrix: np.ndarray,
    matrix: np.ndarray,
    out: np.ndarray,
    undecided: np.ndarray,
) -> int:
    """Euclidean refinement of only the undecided cells, row by row.

    Gathering each row's candidate columns keeps the kernel cost (and,
    on a memory-mapped collection, the bytes actually read) proportional
    to the surviving candidate set instead of ``M × N`` — the payoff of
    index pruning at scale.
    """
    refined = 0
    for row in np.flatnonzero(undecided.any(axis=1)):
        columns = np.flatnonzero(undecided[row])
        out[row, columns] = euclidean_matrix(
            query_matrix[row:row + 1], matrix[columns]
        )[0]
        refined += columns.size
    return refined


class Technique(abc.ABC):
    """A similarity-matching method under the common evaluation protocol."""

    #: Display name used in result tables.
    name: str = "abstract"
    #: ``"distance"`` or ``"probabilistic"``.
    kind: str = "distance"
    #: ``"pdf"`` for single-observation input, ``"multisample"`` for MUNICH.
    input_kind: str = "pdf"
    #: PAA summarization-index geometry (segments per series) backing
    #: :class:`~repro.queries.index.IndexStage`, or ``None`` when the
    #: technique has no admissible summary bound (DUST's table costs are
    #: not Euclidean; PROUD's probabilities never reach exactly 0).
    index_segments: Optional[int] = None
    #: Materialization cache; instances may attach their own.
    _engine: Optional[QueryEngine] = None

    @property
    def engine(self) -> QueryEngine:
        """The :class:`QueryEngine` backing this technique's batch kernels.

        Defaults to the process-wide shared engine so techniques compared
        side by side reuse one values matrix per collection.
        """
        if self._engine is None:
            return SHARED_ENGINE
        return self._engine

    def attach_engine(self, engine: QueryEngine) -> None:
        """Use ``engine`` for this technique's collection materializations."""
        self._engine = engine

    def reset(self) -> None:
        """Drop any per-collection caches (called between datasets).

        A privately attached engine is cleared; the shared engine is left
        alone (it is identity-keyed with strong references, so entries can
        never go stale — eviction is purely a capacity concern).
        """
        if self._engine is not None:
            self._engine.clear()

    def distance(self, query, candidate) -> float:
        """Distance value (distance techniques only)."""
        raise UnsupportedQueryError(f"{self.name} is not a distance technique")

    def probability(self, query, candidate, epsilon: float) -> float:
        """``Pr(distance <= ε)`` (probabilistic techniques only)."""
        raise UnsupportedQueryError(
            f"{self.name} is not a probabilistic technique"
        )

    def distance_profile(self, query, collection: Sequence) -> np.ndarray:
        """Distances from ``query`` to every series of ``collection``.

        The base implementation loops over :meth:`distance`; concrete
        distance techniques override it with a vectorized kernel.  The
        result aligns with ``collection`` (entry ``j`` scores series
        ``j``), so callers exclude self-matches by indexing.
        """
        return np.fromiter(
            (self.distance(query, candidate) for candidate in collection),
            dtype=np.float64,
            count=len(collection),
        )

    def probability_profile(
        self, query, collection: Sequence, epsilon: float
    ) -> np.ndarray:
        """``Pr(distance <= ε)`` against every series of ``collection``.

        Base implementation loops over :meth:`probability`; probabilistic
        techniques override it with a kernel vectorized over the candidate
        axis.
        """
        return np.fromiter(
            (
                self.probability(query, candidate, epsilon)
                for candidate in collection
            ),
            dtype=np.float64,
            count=len(collection),
        )

    # -- the planned matrix API --------------------------------------------

    def build_plan(
        self, kind: str, tau: Optional[float] = None
    ) -> QueryPlan:
        """The filter-and-refine cascade for one workload ``kind``.

        The default plan is a single
        :class:`~repro.queries.planner.RefineStage` — the exact kernel
        over every cell, exactly the pre-planner behaviour, which is
        what keeps custom subclasses working unchanged.  Techniques
        with sound cheap bounds prepend a ``BoundStage``; Monte Carlo
        techniques swap the refinement for an ``AdaptiveMCStage`` when
        the decision threshold ``tau`` is known.
        """
        return QueryPlan((RefineStage(),))

    def matrix_with_stats(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon=None,
        tau=None,
        knn_k: Optional[int] = None,
        exclude: Optional[np.ndarray] = None,
        policy: Optional[PlanPolicy] = None,
    ) -> Tuple[np.ndarray, PruningStats]:
        """Execute this technique's plan over an ``(M, N)`` workload.

        Returns ``(values, stats)`` — the score matrix plus the
        executed plan's :class:`~repro.queries.planner.PruningStats`
        (candidates decided per stage, refinements run, Monte Carlo
        samples evaluated, per-stage wall time).

        ``knn_k``/``exclude`` (top-k workloads) and a distance-kind
        ``epsilon`` (decision-mode range workloads) let the
        summarization index retire certain non-candidates as ``+inf``
        before any kernel runs; plain matrix workloads are unchanged.

        ``tau`` may be a scalar decision threshold or a tuple of grid
        thresholds — Monte Carlo techniques then bracket the whole grid
        in one adaptive pass.  ``policy`` (default: the process-wide
        :func:`~repro.queries.planner.get_default_policy`) governs the
        cost-based chooser; the chosen plan's
        :class:`~repro.queries.planner.PlanExplanation` rides back on
        the returned stats.
        """
        policy = resolve_policy(policy)
        tau = normalize_tau(tau)
        plan = self.build_plan(kind, tau=tau)
        plan = self._indexed_plan(plan, kind, epsilon, knn_k, policy)
        plan, explanation = plan_for_workload(
            self, plan, kind, queries, collection, epsilon, tau, knn_k,
            policy,
        )
        with kernels.use_backend(policy.backend) as backend:
            values, stats = plan.execute(
                self, kind, queries, collection, epsilon=epsilon, tau=tau,
                knn_k=knn_k, exclude=exclude, policy=policy,
            )
        return values, dataclasses.replace(
            stats, explanation=explanation, backend=backend.name
        )

    def _indexed_plan(
        self,
        plan: QueryPlan,
        kind: str,
        epsilon,
        knn_k: Optional[int],
        policy: Optional[PlanPolicy] = None,
    ) -> QueryPlan:
        """Prepend an :class:`~repro.queries.index.IndexStage` when the
        workload carries decision information the index can prune with.

        Distance workloads qualify with a top-k target or a range ε;
        probability workloads qualify when the technique already plans a
        bound stage (the index is that stage's cheap summary-resolution
        pre-filter — a technique that opted out of pruning keeps its
        pure-refine plan).  A ``never_index`` policy (or
        ``use_index=False``) keeps the stage out of the plan entirely.
        """
        if not effective_index_enabled(policy):
            return plan
        if self.index_segments is None or any(
            isinstance(stage, IndexStage) for stage in plan.stages
        ):
            return plan
        if kind == "distance":
            wanted = knn_k is not None or epsilon is not None
        elif kind == "probability":
            wanted = any(
                isinstance(stage, BoundStage) for stage in plan.stages
            )
        else:
            wanted = False
        if not wanted:
            return plan
        return QueryPlan((IndexStage(),) + plan.stages)

    def distance_matrix(self, queries: Sequence, collection: Sequence) -> np.ndarray:
        """``(M, N)`` distances: every query row against every collection series.

        Executes the technique's :meth:`build_plan` cascade (for
        distance techniques: one :meth:`distance_kernel` refine pass).
        Use :meth:`matrix_with_stats` to also get the pruning stats.
        """
        return self.matrix_with_stats("distance", queries, collection)[0]

    def probability_matrix(
        self, queries: Sequence, collection: Sequence, epsilon
    ) -> np.ndarray:
        """``(M, N)`` match probabilities under per-query thresholds.

        ``epsilon`` is a scalar or an ``(M,)`` vector — the evaluation
        protocol calibrates one ε per query.  Executes the technique's
        plan: bound stages decide the clear hits/misses, refine stages
        run the exact kernel on the remainder.
        """
        return self.matrix_with_stats(
            "probability", queries, collection, epsilon=epsilon
        )[0]

    def calibration_matrix(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """``(M, N)`` calibration distances (the ε-derivation matrix).

        Always a single refine pass over :meth:`calibration_kernel`;
        the harness reads each query's ε straight off its anchor
        column.
        """
        return self.matrix_with_stats("calibration", queries, collection)[0]

    # -- plan building blocks (what concrete techniques override) ----------

    def matrix_bounds(
        self, queries: Sequence, collection: Sequence
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` distance-bound stacks for a ``BoundStage``.

        Bounds must hold for *every* materialization of each pair.
        Only techniques that plan a bound stage implement this.
        """
        raise UnsupportedQueryError(
            f"{self.name} does not provide matrix bounds"
        )

    def index_bounds(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        need_upper: bool = False,
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray], float]]:
        """Summarization-index bounds for an :class:`IndexStage`.

        Returns ``(lower, upper, slack)`` — admissible ``(M, N)``
        distance bounds computed from the ``S``-segment PAA summaries
        (``upper`` may be ``None`` unless ``need_upper``, i.e. a top-k
        workload needs pruning thresholds), or ``None`` when this
        technique/workload has no admissible summary bound, which makes
        the stage a sound no-op.
        """
        return None

    def refine_matrix(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon: Optional[np.ndarray],
        out: np.ndarray,
        undecided: np.ndarray,
        tau: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Exact kernel over the surviving candidate mask.

        Fills every still-``undecided`` cell of ``out`` and returns
        ``(refined, samples_drawn)`` accounting.  The base
        implementation evaluates the dense kernel and scatters the
        masked cells; techniques whose refinement is per-candidate
        (MUNICH's convolution, the Monte Carlo evaluators) override it
        to touch only the undecided cells.
        """
        if kind == "distance":
            dense = self.distance_kernel(queries, collection)
        elif kind == "calibration":
            dense = self.calibration_kernel(queries, collection)
        else:
            dense = self.probability_kernel(queries, collection, epsilon)
        dense = np.asarray(dense, dtype=np.float64)
        if undecided.all():
            # No bound stage ran (or nothing was decided): plain copy
            # instead of two boolean gathers over the full grid.
            out[:] = dense
            return out.size, 0
        out[undecided] = dense[undecided]
        return int(np.count_nonzero(undecided)), 0

    def distance_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """The exact all-pairs distance kernel the refine stage runs.

        Base implementation stacks :meth:`distance_profile` rows —
        unless the subclass still overrides :meth:`distance_matrix`
        directly (the pre-planner extension point), in which case that
        override *is* the kernel.
        """
        if type(self).distance_matrix is not Technique.distance_matrix:
            return self.distance_matrix(queries, collection)
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        return np.vstack(
            [self.distance_profile(query, collection) for query in queries]
        )

    def probability_kernel(
        self, queries: Sequence, collection: Sequence, epsilon
    ) -> np.ndarray:
        """The exact all-pairs probability kernel the refine stage runs."""
        eps = _epsilon_vector(epsilon, len(queries))
        if type(self).probability_matrix is not Technique.probability_matrix:
            return self.probability_matrix(queries, collection, eps)
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        return np.vstack(
            [
                self.probability_profile(query, collection, float(value))
                for query, value in zip(queries, eps)
            ]
        )

    def calibration_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """The exact calibration-distance kernel the refine stage runs.

        For distance techniques this *is* :meth:`distance_kernel`; for
        probabilistic ones it stacks :meth:`calibration_profile` rows
        (concrete techniques override with a Euclidean GEMM).
        """
        if type(self).calibration_matrix is not Technique.calibration_matrix:
            return self.calibration_matrix(queries, collection)
        if self.kind == "distance":
            return self.distance_kernel(queries, collection)
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        return np.vstack(
            [self.calibration_profile(query, collection) for query in queries]
        )

    def calibration_distance(self, query, candidate) -> float:
        """Distance used to derive this technique's ``ε`` from the 10th NN.

        Distance techniques use their own distance; probabilistic ones use
        Euclidean on the observations (the paper's ``ε_eucl``).
        """
        return self.distance(query, candidate)

    def calibration_profile(self, query, collection: Sequence) -> np.ndarray:
        """Calibration distances from ``query`` to every collection series.

        For distance techniques this *is* :meth:`distance_profile`, so the
        harness derives ε and the result set from one batch computation.
        """
        if self.kind == "distance":
            return self.distance_profile(query, collection)
        return np.fromiter(
            (
                self.calibration_distance(query, candidate)
                for candidate in collection
            ),
            dtype=np.float64,
            count=len(collection),
        )

    def matches(self, query, candidate, epsilon: float,
                tau: Optional[float] = None) -> bool:
        """Range-query predicate for one candidate."""
        if self.kind == "distance":
            return self.distance(query, candidate) <= epsilon
        if tau is None:
            raise InvalidParameterError(
                f"{self.name} requires a probability threshold tau"
            )
        return self.probability(query, candidate, epsilon) >= tau

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class EuclideanTechnique(Technique):
    """The baseline: Euclidean distance on the raw observations,
    ignoring every piece of uncertainty information (Section 4.1.2)."""

    name = "Euclidean"
    kind = "distance"
    index_segments = DEFAULT_SEGMENTS

    def __init__(self, index_segments: Optional[int] = DEFAULT_SEGMENTS) -> None:
        self.index_segments = index_segments

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return euclidean(query.observations, candidate.observations)

    def distance_profile(
        self, query: UncertainTimeSeries, collection: Sequence
    ) -> np.ndarray:
        """Row-wise Euclidean against the cached ``(N, n)`` values matrix."""
        matrix = self.engine.materialize(collection).values_matrix()
        return euclidean_profile(query.observations, matrix)

    def distance_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """All-pairs Euclidean in one GEMM over the cached values matrices."""
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        matrix = self.engine.materialize(collection).values_matrix()
        query_matrix = self.engine.materialize(queries).values_matrix()
        return euclidean_matrix(query_matrix, matrix)

    def index_bounds(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        need_upper: bool = False,
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray], float]]:
        """PAA projection bounds over the cached values summaries.

        The lower bound is the Euclidean distance between the
        (width-scaled) segment-mean vectors — an orthogonal projection,
        hence a contraction; the upper bound adds both reconstruction
        residual norms (triangle inequality).
        """
        if (
            kind != "distance"
            or self.index_segments is None
            or len(queries) == 0
            or len(collection) == 0
        ):
            return None
        summary = self.engine.materialize(collection).paa_summary(
            self.index_segments
        )
        query_summary = _query_point_summary(
            self.engine, queries, summary.n_segments
        )
        lower = paa_lower_bound(query_summary, summary)
        upper = (
            paa_upper_bound(lower, query_summary, summary)
            if need_upper
            else None
        )
        return lower, upper, 0.0

    def refine_matrix(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon: Optional[np.ndarray],
        out: np.ndarray,
        undecided: np.ndarray,
        tau: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Dense GEMM normally; candidate-gather refinement when the
        index pruned most of the grid (sub-linear at scale)."""
        if undecided.all() or 2 * np.count_nonzero(undecided) >= undecided.size:
            return super().refine_matrix(
                kind, queries, collection, epsilon, out, undecided, tau=tau
            )
        matrix = self.engine.materialize(collection).values_matrix()
        query_matrix = self.engine.materialize(queries).values_matrix()
        return _sparse_euclidean_refine(
            query_matrix, matrix, out, undecided
        ), 0


class DustTechnique(Technique):
    """DUST distance using each series' *reported* error model."""

    name = "DUST"
    kind = "distance"

    def __init__(self, cache: Optional[DustTableCache] = None,
                 tail_workaround: bool = True) -> None:
        self._dust = Dust(cache=cache, tail_workaround=tail_workaround)

    @property
    def dust(self) -> Dust:
        """The underlying :class:`~repro.dust.Dust` engine (shared tables)."""
        return self._dust

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return self._dust.distance(query, candidate)

    def distance_profile(
        self, query: UncertainTimeSeries, collection: Sequence
    ) -> np.ndarray:
        """DUST lifted to the whole ``(N, n)`` difference matrix.

        Cells are grouped by their ``(error_q, error_c)`` lookup table via
        the collection's cached error-model code matrix, so a homogeneous
        run costs a single vectorized table application and mixed-error
        runs cost one per distinct pair — never one per candidate.
        """
        materialized = self.engine.materialize(collection)
        values = materialized.values_matrix()
        differences = np.abs(values - query.observations[None, :])
        codes, distincts = materialized.model_codes()

        query_model = query.error_model
        table_cache = self._dust.cache
        if query_model.is_homogeneous and len(distincts) == 1:
            table = table_cache.get(query_model[0], distincts[0])
            return np.sqrt(table.dust_squared(differences).sum(axis=1))

        # Map the query's per-timestamp distributions into the collection's
        # code space (extending it for distributions unseen there).
        mapping = {distribution: i for i, distribution in enumerate(distincts)}
        query_codes = np.fromiter(
            (
                mapping.setdefault(distribution, len(mapping))
                for distribution in query_model
            ),
            dtype=np.intp,
            count=len(query_model),
        )
        all_distinct = list(mapping)
        n_codes = len(all_distinct)
        pair_codes = query_codes[None, :] * n_codes + codes
        dust_squared = np.empty_like(differences)
        for pair in np.unique(pair_codes):
            query_index, candidate_index = divmod(int(pair), n_codes)
            table = table_cache.get(
                all_distinct[query_index], all_distinct[candidate_index]
            )
            cells = pair_codes == pair
            dust_squared[cells] = table.dust_squared(differences[cells])
        return np.sqrt(dust_squared.sum(axis=1))

    def distance_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """DUST lifted to the full ``(M, N, n)`` difference tensor.

        Query- and collection-side error models are merged into one code
        space; a homogeneous workload (the common case) is a single fused
        table application per query block, and mixed-error workloads cost
        one application per distinct ``(error_q, error_c)`` pair.  Blocks
        bound peak memory to a few MB regardless of ``M × N``.
        """
        n_queries = len(queries)
        if n_queries == 0:
            return np.empty((0, len(collection)))
        materialized = self.engine.materialize(collection)
        values = materialized.values_matrix()
        codes, distincts = materialized.model_codes()
        query_side = self.engine.materialize(queries)
        query_values = query_side.values_matrix()
        query_codes, query_distincts = query_side.model_codes()

        mapping = {distribution: i for i, distribution in enumerate(distincts)}
        translate = np.fromiter(
            (
                mapping.setdefault(distribution, len(mapping))
                for distribution in query_distincts
            ),
            dtype=np.intp,
            count=len(query_distincts),
        )
        all_distinct = list(mapping)
        n_codes = len(all_distinct)
        table_cache = self._dust.cache
        length = values.shape[1]
        out = np.empty((n_queries, len(collection)))

        if n_codes == 1:
            table = table_cache.get(all_distinct[0], all_distinct[0])
            # The full protocol queries the collection against itself; with
            # one shared error model DUST is symmetric, so only the upper
            # triangle (plus the small in-block overlap) is computed and
            # the rest is mirrored — per-cell values are bit-identical to
            # the row-wise profiles either way.
            symmetric = queries is collection
            for start, stop in _query_blocks(
                n_queries, len(collection), length
            ):
                columns = values[start:] if symmetric else values
                differences = np.abs(
                    columns[None, :, :] - query_values[start:stop, None, :]
                )
                block = table.dust_squared_sum(differences)
                if symmetric:
                    out[start:stop, start:] = block
                else:
                    out[start:stop] = block
            if symmetric and n_queries > 1:
                lower = np.tril_indices(n_queries, k=-1)
                out[lower] = out.T[lower]
            return np.sqrt(out, out=out)

        joint_query_codes = translate[query_codes]
        for start, stop in _query_blocks(n_queries, len(collection), length):
            differences = np.abs(
                values[None, :, :] - query_values[start:stop, None, :]
            )
            pair_codes = (
                joint_query_codes[start:stop, None, :] * n_codes
                + codes[None, :, :]
            )
            dust_squared = np.empty_like(differences)
            for pair in np.unique(pair_codes):
                query_index, candidate_index = divmod(int(pair), n_codes)
                table = table_cache.get(
                    all_distinct[query_index], all_distinct[candidate_index]
                )
                cells = pair_codes == pair
                dust_squared[cells] = table.dust_squared(differences[cells])
            out[start:stop] = dust_squared.sum(axis=2)
        return np.sqrt(out, out=out)


class FilteredTechnique(Technique):
    """UMA / UEMA / MA / EMA: Euclidean over filtered sequences.

    Filtered versions of each series are cached so a full query workload
    filters every series exactly once: collection-level matrices live in
    the query engine, and the per-pair path memoizes per series while
    holding a strong reference (object identity stays valid for exactly as
    long as the entry exists).
    """

    kind = "distance"
    index_segments = DEFAULT_SEGMENTS

    def __init__(
        self,
        filtered: FilteredEuclidean,
        index_segments: Optional[int] = DEFAULT_SEGMENTS,
    ) -> None:
        self.filtered = filtered
        self.name = filtered.name
        self.index_segments = index_segments
        self._cache: Dict[int, Tuple[UncertainTimeSeries, np.ndarray]] = {}

    @classmethod
    def uma(cls, window: int = 2) -> "FilteredTechnique":
        """UMA with the paper's default window ``w=2``."""
        return cls(FilteredEuclidean("uma", window=window))

    @classmethod
    def uema(cls, window: int = 2, decay: float = 1.0) -> "FilteredTechnique":
        """UEMA with the paper's defaults ``w=2, λ=1``."""
        return cls(FilteredEuclidean("uema", window=window, decay=decay))

    def reset(self) -> None:
        self._cache.clear()
        super().reset()

    def _filtered_values(self, series: UncertainTimeSeries) -> np.ndarray:
        key = id(series)
        entry = self._cache.get(key)
        if entry is None:
            values = self.filtered.filter_uncertain(series)
            self._cache[key] = (series, values)
            return values
        return entry[1]

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return euclidean(
            self._filtered_values(query), self._filtered_values(candidate)
        )

    def distance_profile(
        self, query: UncertainTimeSeries, collection: Sequence
    ) -> np.ndarray:
        """Row-wise Euclidean over the cached filtered ``(N, n)`` matrix."""
        matrix = self.engine.materialize(collection).filtered_matrix(
            self.filtered
        )
        return euclidean_profile(self._filtered_values(query), matrix)

    def distance_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """All-pairs filtered Euclidean: one GEMM over two filtered stacks."""
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        matrix = self.engine.materialize(collection).filtered_matrix(
            self.filtered
        )
        query_matrix = self.engine.materialize(queries).filtered_matrix(
            self.filtered
        )
        return euclidean_matrix(query_matrix, matrix)

    def index_bounds(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        need_upper: bool = False,
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray], float]]:
        """PAA bounds over the *filtered* matrices.

        UMA/UEMA distances are Euclidean on filtered values, so the
        index must summarize the same filtered stacks its kernel
        compares — summarizing raw observations would not be admissible.
        """
        if (
            kind != "distance"
            or self.index_segments is None
            or len(queries) == 0
            or len(collection) == 0
        ):
            return None
        summary = self.engine.materialize(collection).filtered_paa_summary(
            self.filtered, self.index_segments
        )
        if len(queries) == 1:
            query_summary = summarize_values(
                self._filtered_values(queries[0])[None, :],
                summary.n_segments,
            )
        else:
            query_summary = self.engine.materialize(
                queries
            ).filtered_paa_summary(self.filtered, summary.n_segments)
        lower = paa_lower_bound(query_summary, summary)
        upper = (
            paa_upper_bound(lower, query_summary, summary)
            if need_upper
            else None
        )
        return lower, upper, 0.0

    def refine_matrix(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon: Optional[np.ndarray],
        out: np.ndarray,
        undecided: np.ndarray,
        tau: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Dense GEMM normally; candidate-gather refinement when the
        index pruned most of the grid."""
        if undecided.all() or 2 * np.count_nonzero(undecided) >= undecided.size:
            return super().refine_matrix(
                kind, queries, collection, epsilon, out, undecided, tau=tau
            )
        matrix = self.engine.materialize(collection).filtered_matrix(
            self.filtered
        )
        query_matrix = self.engine.materialize(queries).filtered_matrix(
            self.filtered
        )
        return _sparse_euclidean_refine(
            query_matrix, matrix, out, undecided
        ), 0


class ProudTechnique(Technique):
    """PROUD under the harness protocol.

    PROUD "requires to know the standard deviation of the uncertainty
    error [...] constant across all timestamps" (Section 3.1).  When
    ``assumed_std`` is given, every series' error model is replaced by that
    constant-σ normal model — the knob the mixed-error experiments turn
    (σ=0.7 in Figures 8–10).  Otherwise the series' reported model is used
    as-is.
    """

    name = "PROUD"
    kind = "probabilistic"

    def __init__(
        self,
        assumed_std: Optional[float] = None,
        synopsis_coefficients: Optional[int] = None,
    ) -> None:
        # tau is supplied per matches() call by the harness; the default
        # here only matters for direct interactive use.
        self._proud = Proud(tau=0.5, synopsis_coefficients=synopsis_coefficients)
        self.assumed_std = assumed_std
        self._model_cache: Dict[
            int, Tuple[UncertainTimeSeries, UncertainTimeSeries]
        ] = {}

    def reset(self) -> None:
        self._model_cache.clear()
        if self._proud.synopsis is not None:
            self._proud.synopsis.clear_cache()
        super().reset()

    def _with_assumed_model(
        self, series: UncertainTimeSeries
    ) -> UncertainTimeSeries:
        if self.assumed_std is None:
            return series
        key = id(series)
        entry = self._model_cache.get(key)
        if entry is None:
            model = ErrorModel.constant(
                make_distribution("normal", self.assumed_std), len(series)
            )
            rewritten = UncertainTimeSeries(
                series.observations, model,
                label=series.label, name=series.name,
            )
            # The original series is kept alongside the rewrite: the strong
            # reference pins its id for the lifetime of the cache entry.
            self._model_cache[key] = (series, rewritten)
            return rewritten
        return entry[1]

    def probability(
        self,
        query: UncertainTimeSeries,
        candidate: UncertainTimeSeries,
        epsilon: float,
    ) -> float:
        return self._proud.match_probability(
            self._with_assumed_model(query),
            self._with_assumed_model(candidate),
            epsilon,
        )

    def probability_profile(
        self,
        query: UncertainTimeSeries,
        collection: Sequence,
        epsilon: float,
    ) -> np.ndarray:
        """PROUD's normal model evaluated over the whole candidate axis.

        The squared-distance moments (Equations 5–7) are sums of
        per-timestamp terms, so they vectorize directly over the cached
        values and variance matrices.  The synopsis variant estimates
        moments per union-of-coefficients and keeps the per-pair path.
        """
        if self._proud.synopsis is not None:
            return super().probability_profile(query, collection, epsilon)
        if epsilon < 0.0:
            raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
        materialized = self.engine.materialize(collection)
        values = materialized.values_matrix()
        observed = values - query.observations[None, :]
        if self.assumed_std is not None:
            # Constant-σ rewrite: Var[D_i] is one scalar; broadcasting it
            # avoids materializing (N, n) constant matrices per query.
            assumed_variance = self.assumed_std * self.assumed_std
            variance_d = assumed_variance + assumed_variance
        else:
            variances = materialized.variances_matrix()
            query_variances = query.error_model.variances()
            variance_d = variances + query_variances[None, :]
        mean = (observed * observed + variance_d).sum(axis=1)
        variance = (
            2.0 * variance_d * variance_d
            + 4.0 * observed * observed * variance_d
        ).sum(axis=1)

        probabilities = np.where(mean <= epsilon * epsilon, 1.0, 0.0)
        random = variance > 0.0
        if np.any(random):
            z = (epsilon * epsilon - mean[random]) / np.sqrt(variance[random])
            probabilities[random] = std_normal_cdf(z)
        return probabilities

    def probability_kernel(
        self, queries: Sequence, collection: Sequence, epsilon
    ) -> np.ndarray:
        """PROUD's moment algebra broadcast over the query axis.

        Under a constant assumed σ the mean and variance of the
        squared-distance distribution are affine in the squared Euclidean
        distance, so the whole matrix reduces to one GEMM.  With reported
        (possibly heterogeneous) models the per-timestamp moments are
        accumulated over bounded ``(B, N, n)`` blocks.  ``epsilon`` may be
        a scalar or one threshold per query.
        """
        n_queries = len(queries)
        eps = _epsilon_vector(epsilon, n_queries)
        if n_queries == 0:
            return np.empty((0, len(collection)))
        if self._proud.synopsis is not None:
            return super().probability_kernel(queries, collection, eps)
        materialized = self.engine.materialize(collection)
        values = materialized.values_matrix()
        query_side = self.engine.materialize(queries)
        query_values = query_side.values_matrix()
        n_series, length = values.shape

        if self.assumed_std is not None:
            assumed_variance = self.assumed_std * self.assumed_std
            variance_d = assumed_variance + assumed_variance
            squared = squared_euclidean_matrix(query_values, values)
            mean = squared + length * variance_d
            variance = (
                2.0 * variance_d * variance_d * length
                + 4.0 * variance_d * squared
            )
        else:
            variances = materialized.variances_matrix()
            query_variances = query_side.variances_matrix()
            mean = np.empty((n_queries, n_series))
            variance = np.empty((n_queries, n_series))
            for start, stop in _query_blocks(n_queries, n_series, length):
                observed = values[None, :, :] - query_values[start:stop, None, :]
                block_variance_d = (
                    variances[None, :, :]
                    + query_variances[start:stop, None, :]
                )
                observed *= observed  # squared residuals, in place
                mean[start:stop] = (observed + block_variance_d).sum(axis=2)
                variance[start:stop] = (
                    2.0 * block_variance_d * block_variance_d
                    + 4.0 * observed * block_variance_d
                ).sum(axis=2)

        epsilon_squared = (eps * eps)[:, None]
        probabilities = np.where(mean <= epsilon_squared, 1.0, 0.0)
        random = variance > 0.0
        if np.any(random):
            z = (
                np.broadcast_to(epsilon_squared, mean.shape)[random]
                - mean[random]
            ) / np.sqrt(variance[random])
            probabilities[random] = std_normal_cdf(z)
        return probabilities

    def calibration_distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return euclidean(query.observations, candidate.observations)

    def calibration_profile(
        self, query: UncertainTimeSeries, collection: Sequence
    ) -> np.ndarray:
        """Vectorized ε_eucl: Euclidean on observations, row-wise."""
        matrix = self.engine.materialize(collection).values_matrix()
        return euclidean_profile(query.observations, matrix)

    def calibration_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """All-pairs ε_eucl in one GEMM over the cached values matrices."""
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        matrix = self.engine.materialize(collection).values_matrix()
        query_matrix = self.engine.materialize(queries).values_matrix()
        return euclidean_matrix(query_matrix, matrix)


class _MultisampleCalibration:
    """ε_eucl calibration for multisample (MUNICH-family) techniques.

    The paper's ε_eucl is "the Euclidean distance on the observations".
    A multisample series' observation is one sample draw per timestamp
    (column 0 — any fixed column is a single observation); using the
    sample *means* instead would understate the noise inflation that the
    materialization distances carry, systematically deflating match
    probabilities.
    """

    def calibration_distance(
        self,
        query: MultisampleUncertainTimeSeries,
        candidate: MultisampleUncertainTimeSeries,
    ) -> float:
        return euclidean(query.samples[:, 0], candidate.samples[:, 0])

    def calibration_profile(
        self, query: MultisampleUncertainTimeSeries, collection: Sequence
    ) -> np.ndarray:
        """Vectorized ε_eucl over the cached column-0 sample matrix."""
        matrix = self.engine.materialize(collection).sample_column_matrix(0)
        return euclidean_profile(query.samples[:, 0], matrix)

    def calibration_kernel(
        self, queries: Sequence, collection: Sequence
    ) -> np.ndarray:
        """All-pairs ε_eucl in one GEMM over the column-0 sample matrices."""
        if len(queries) == 0:
            return np.empty((0, len(collection)))
        matrix = self.engine.materialize(collection).sample_column_matrix(0)
        query_matrix = self.engine.materialize(queries).sample_column_matrix(0)
        return euclidean_matrix(query_matrix, matrix)


class MunichTechnique(_MultisampleCalibration, Technique):
    """MUNICH under the harness protocol (multi-sample input)."""

    name = "MUNICH"
    kind = "probabilistic"
    input_kind = "multisample"
    index_segments = DEFAULT_SEGMENTS

    def __init__(
        self,
        munich: Optional[Munich] = None,
        index_segments: Optional[int] = DEFAULT_SEGMENTS,
    ) -> None:
        self._munich = munich if munich is not None else Munich(tau=0.5)
        self.index_segments = index_segments

    @property
    def munich(self) -> Munich:
        """The underlying :class:`~repro.munich.Munich` engine."""
        return self._munich

    def _evaluate_undecided(
        self,
        query: MultisampleUncertainTimeSeries,
        collection: Sequence,
        epsilon: float,
        out: np.ndarray,
        undecided: np.ndarray,
    ) -> None:
        """Probability evaluation for the bound-undecided candidates.

        Convolution mode runs the whole undecided set through the
        stacked batch evaluator on the collection's materialized sample
        tensor (shared bin grid per query); the Monte Carlo and naive
        evaluators — and ragged-sample collections the tensor cannot
        represent — keep the per-pair path.
        """
        if undecided.size == 0:
            return
        if self._munich.method == "convolution":
            tensor = self.engine.materialize(collection).samples_tensor()
            if tensor is not None:
                out[undecided] = convolved_probability_batch(
                    query,
                    tensor[undecided],
                    epsilon,
                    n_bins=self._munich.n_bins,
                )
                return
        for index in undecided:
            out[index] = self._munich.probability(
                query, collection[index], epsilon
            )

    def probability(
        self,
        query: MultisampleUncertainTimeSeries,
        candidate: MultisampleUncertainTimeSeries,
        epsilon: float,
    ) -> float:
        return self._munich.probability(query, candidate, epsilon)

    def probability_profile(
        self,
        query: MultisampleUncertainTimeSeries,
        collection: Sequence,
        epsilon: float,
    ) -> np.ndarray:
        """MUNICH's bounding filter vectorized over the candidate axis.

        One single-row execution of the technique's query plan: the
        bound stage decides the clear hits/misses from the cached
        interval stacks, and only the undecided middle pays the
        probability evaluation, batched over the whole set in
        convolution mode.  With bounds disabled the plan is a single
        refine stage and matches the per-pair path exactly.
        """
        values, _ = self.matrix_with_stats(
            "probability", [query], collection, epsilon=epsilon
        )
        return values[0]

    def build_plan(
        self, kind: str, tau: Optional[float] = None
    ) -> QueryPlan:
        """Bound stage (when enabled) + batched refine.

        With ``method="montecarlo"`` and a known decision threshold the
        refinement runs adaptively (escalating sample rounds, sequential
        stopping); the exact convolution/naive evaluators always refine
        in full.
        """
        if kind != "probability":
            return super().build_plan(kind, tau=tau)
        stages: list = []
        if self._munich.use_bounds:
            stages.append(BoundStage())
        if tau is not None and self._munich.method == "montecarlo":
            stages.append(AdaptiveMCStage())
        else:
            stages.append(RefineStage())
        return QueryPlan(stages)

    def matrix_bounds(
        self,
        queries: Sequence,
        collection: Sequence,
        precision: str = "float64",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Minimal-bounding-interval distance bounds for every pair.

        The per-timestamp interval gap/span arithmetic (Section 2.1) is
        broadcast over bounded query blocks of the cached ``(N, n)``
        interval stacks; in float64 the sums run along the timestamp
        axis exactly as in the per-row path, so the bounds are
        bit-identical to it.  With ``precision="float32"`` the blocks
        stream the engine's half-width interval tier and the resulting
        sums are widened by :func:`_float32_sum_slop`, keeping every
        decided cell identical to the float64 path's.
        """
        materialized = self.engine.materialize(collection)
        if precision == "float32":
            low, high, scale = materialized.bounding_matrices32()
            query_low, query_high, query_scale = _query_bound_stacks32(
                self.engine, queries
            )
            slop = _float32_sum_slop(max(scale, query_scale), low.shape[1])
        else:
            low, high = materialized.bounding_matrices()
            query_low, query_high = _query_bound_stacks(self.engine, queries)
            slop = 0.0
        n_queries = len(queries)
        n_series = len(collection)
        length = low.shape[1]
        lower = np.empty((n_queries, n_series))
        upper = np.empty((n_queries, n_series))
        for start, stop in _query_blocks(n_queries, n_series, length):
            gap, span = interval_gap_and_span(
                low[None, :, :],
                high[None, :, :],
                query_low[start:stop, None, :],
                query_high[start:stop, None, :],
            )
            if slop:
                lower[start:stop] = np.sqrt(np.maximum(
                    (gap * gap).sum(axis=2, dtype=np.float64) - slop, 0.0
                ))
                upper[start:stop] = np.sqrt(
                    (span * span).sum(axis=2, dtype=np.float64) + slop
                )
            else:
                lower[start:stop] = np.sqrt((gap * gap).sum(axis=2))
                upper[start:stop] = np.sqrt((span * span).sum(axis=2))
        return lower, upper

    def index_bounds(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        need_upper: bool = False,
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray], float]]:
        """Segment-coarsened bounding-interval gap bound.

        The mean-interval gap per segment lower-bounds every
        materialization pair's segment-mean difference, so the weighted
        gap norm lower-bounds their Euclidean distance — the
        ``S``-segment coarsening of :meth:`matrix_bounds`' lower bound.
        Cells it prunes have match probability exactly 0.
        """
        if (
            kind != "probability"
            or self.index_segments is None
            or len(queries) == 0
            or len(collection) == 0
        ):
            return None
        summary = self.engine.materialize(collection).interval_paa_summary(
            self.index_segments
        )
        query_summary = _query_interval_summary(
            self.engine, queries, summary.n_segments
        )
        return interval_lower_bound(query_summary, summary), None, 0.0

    def refine_matrix(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon: Optional[np.ndarray],
        out: np.ndarray,
        undecided: np.ndarray,
        tau: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Per-row batched probability evaluation of the undecided cells."""
        if kind != "probability":
            return super().refine_matrix(
                kind, queries, collection, epsilon, out, undecided, tau=tau
            )
        adaptive = tau is not None and self._munich.method == "montecarlo"
        refined = 0
        samples = 0
        for row in np.flatnonzero(undecided.any(axis=1)):
            columns = np.flatnonzero(undecided[row])
            row_epsilon = float(epsilon[row])
            if adaptive:
                samples += self._adaptive_mc_row(
                    queries[row], collection, columns, row_epsilon, tau,
                    out[row],
                )
            else:
                self._evaluate_undecided(
                    queries[row], collection, row_epsilon, out[row], columns
                )
                if self._munich.method == "montecarlo":
                    samples += columns.size * self._munich.n_samples
            refined += columns.size
        return refined, samples

    def _adaptive_mc_row(
        self,
        query: MultisampleUncertainTimeSeries,
        collection: Sequence,
        columns: np.ndarray,
        epsilon: float,
        tau,
        out_row: np.ndarray,
    ) -> int:
        """Adaptive Monte Carlo refinement of one query row.

        Draws the same seeded materialization pairs the fixed-``s``
        evaluator would, but evaluates them in escalating rounds and
        stops at the first round whose hit count already determines the
        ``>= τ`` verdict — for a grid ``tau`` tuple, the first round
        that decides *every* grid threshold at once.  Returns the
        number of draws evaluated.
        """
        n_samples = self._munich.n_samples
        schedule = adaptive_mc_schedule(n_samples)
        squared_threshold = epsilon * epsilon
        evaluated_total = 0
        for index in columns:
            x_values, y_values = draw_materialization_pairs(
                query, collection[index], n_samples, self._munich.rng
            )
            hits = 0
            evaluated = 0
            for target in schedule:
                residual = x_values[evaluated:target] - y_values[evaluated:target]
                squared = (residual**2).sum(axis=1)
                hits += int(np.count_nonzero(squared <= squared_threshold))
                evaluated = target
                verdict = sequential_mc_verdict(
                    hits, evaluated, n_samples, tau
                )
                if verdict is not None:
                    out_row[index] = verdict
                    break
            evaluated_total += evaluated
        return evaluated_total


class DustDtwTechnique(Technique):
    """DUST-DTW: banded DTW with ``dust²`` as the point cost (Section 3.2).

    The per-pair anchor is :meth:`~repro.dust.Dust.dtw_distance`; the
    batch kernels lift it onto the anti-diagonal wavefront DP of
    :mod:`repro.distances.dtw_batch`, grouping candidates by their error
    distribution so a homogeneous collection is one stacked cost-tensor
    pass per block.  Results are bit-identical to the per-pair program.
    """

    name = "DUST-DTW"
    kind = "distance"

    def __init__(
        self,
        window: Optional[int] = None,
        cache: Optional[DustTableCache] = None,
        tail_workaround: bool = True,
    ) -> None:
        if window is not None and window < 0:
            raise InvalidParameterError(f"window must be >= 0, got {window}")
        self.window = window
        self._dust = Dust(cache=cache, tail_workaround=tail_workaround)

    @property
    def dust(self) -> Dust:
        """The underlying :class:`~repro.dust.Dust` engine (shared tables)."""
        return self._dust

    def distance(
        self, query: UncertainTimeSeries, candidate: UncertainTimeSeries
    ) -> float:
        return self._dust.dtw_distance(query, candidate, window=self.window)

    def distance_profile(
        self, query: UncertainTimeSeries, collection: Sequence
    ) -> np.ndarray:
        """Stacked wavefront DTW over grouped ``dust²`` cost tensors.

        Candidates sharing an error distribution (read off the cached
        code matrix's first timestamp, the same distribution the per-pair
        path keys its table on) advance through one DP together; blocks
        bound the ``(B, n, m)`` cost tensors.
        """
        materialized = self.engine.materialize(collection)
        values = materialized.values_matrix()
        codes, distincts = materialized.model_codes()
        out = np.empty(len(collection))
        query_distribution = query.error_model[0]
        first_codes = codes[:, 0]
        for code in np.unique(first_codes):
            table = self._dust.cache.get(
                query_distribution, distincts[int(code)]
            )
            rows = np.flatnonzero(first_codes == code)
            out[rows] = _dust_dtw_stack(
                query.observations, values[rows], table, self.window
            )
        return out


def _dust_dtw_stack(
    query_values: np.ndarray,
    candidate_values: np.ndarray,
    table,
    window: Optional[int],
) -> np.ndarray:
    """Banded DTW of one query against a value stack under one DUST table.

    Long series (length ≥
    :data:`~repro.distances.dtw_batch.ROLLING_MIN_LENGTH`) advance
    through the rolling three-diagonal state with ``dust²`` costs
    produced per diagonal, so neither the ``(B, n, m)`` cost tensor nor
    the full DP state is ever materialized.
    """
    n = query_values.size
    n_pairs, m = candidate_values.shape
    out = np.empty(n_pairs)
    if _use_rolling_dtw(n, m):
        for start, stop in rolling_stack_blocks(n_pairs, n, m):
            block = candidate_values[start:stop]

            def cost_fn(rows, cols, block=block):
                return table.dust_squared(
                    np.abs(query_values[rows][None, :] - block[:, cols])
                )

            out[start:stop] = rolling_dtw_from_cost_fn(
                stop - start, n, m, cost_fn, window
            )
        return out
    for start, stop in stack_blocks(n_pairs, n, m):
        differences = np.abs(
            query_values[None, :, None]
            - candidate_values[start:stop, None, :]
        )
        out[start:stop] = banded_dtw_from_costs(
            table.dust_squared(differences), window
        )
    return out


class MunichDtwTechnique(_MultisampleCalibration, Technique):
    """MUNICH over banded DTW (multi-sample input, Monte Carlo counting).

    DTW distances do not factorize per timestamp, so
    :meth:`~repro.munich.Munich.dtw_probability` counts matching
    materialization pairs by Monte Carlo — per pair, one full Python DP
    per drawn sample.  The batch path draws the *same* seeded
    materializations and pushes the whole draw stack through the pruning
    cascade + wavefront DP of :func:`~repro.distances.dtw_batch.dtw_hits_paired`,
    with two collection-level stages reusing cached engine stacks:

    * a band-inflated bounding-interval envelope lower bound — candidates
      no materialization can reach are 0.0 without sampling;
    * the diagonal-path interval span upper bound — candidates every
      materialization matches are 1.0 without sampling.

    Both stages and the per-sample cascade are slack-guarded, so a seeded
    technique returns exactly the per-pair probabilities.
    """

    name = "MUNICH-DTW"
    kind = "probabilistic"
    input_kind = "multisample"
    index_segments = DEFAULT_SEGMENTS

    def __init__(
        self,
        window: Optional[int] = None,
        munich: Optional[Munich] = None,
        use_bounds: bool = True,
        index_segments: Optional[int] = DEFAULT_SEGMENTS,
    ) -> None:
        if window is not None and window < 0:
            raise InvalidParameterError(f"window must be >= 0, got {window}")
        self.window = window
        self._munich = (
            munich
            if munich is not None
            else Munich(tau=0.5, method="montecarlo", rng=0)
        )
        self.use_bounds = use_bounds
        self.index_segments = index_segments

    @property
    def munich(self) -> Munich:
        """The underlying :class:`~repro.munich.Munich` engine."""
        return self._munich

    def probability(
        self,
        query: MultisampleUncertainTimeSeries,
        candidate: MultisampleUncertainTimeSeries,
        epsilon: float,
    ) -> float:
        return self._munich.dtw_probability(
            query, candidate, epsilon, window=self.window
        )

    def probability_profile(
        self,
        query: MultisampleUncertainTimeSeries,
        collection: Sequence,
        epsilon: float,
    ) -> np.ndarray:
        """One single-row execution of the technique's query plan."""
        values, _ = self.matrix_with_stats(
            "probability", [query], collection, epsilon=epsilon
        )
        return values[0]

    def build_plan(
        self, kind: str, tau: Optional[float] = None
    ) -> QueryPlan:
        """Slack-guarded envelope bound stage + Monte Carlo refinement.

        With a known decision threshold the Monte Carlo refinement runs
        adaptively (the tentpole's early-stopping path); exhaustive
        enumeration (``method="naive"``) keeps the plain refine plan.
        """
        if kind != "probability" or self._munich.method == "naive":
            return super().build_plan(kind, tau=tau)
        stages: list = []
        if self.use_bounds:
            stages.append(BoundStage(slack=PRUNE_SLACK))
        if tau is not None:
            stages.append(AdaptiveMCStage())
        else:
            stages.append(RefineStage())
        return QueryPlan(stages)

    def matrix_bounds(
        self,
        queries: Sequence,
        collection: Sequence,
        precision: str = "float64",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Envelope lower bounds and interval-span upper bounds per pair.

        * **lower** — LB_Keogh overshoot of each query's bounding
          interval against the candidate's band-inflated envelope stack
          (cached per window): no materialization of the pair can align
          closer, so exceeding ε means probability 0.
        * **upper** — the diagonal-path interval span: the band always
          contains the diagonal for equal lengths, so every
          materialization pair stays within it — clearing ε means
          probability 1.

        ``precision="float32"`` streams the engine's half-width
        envelope/interval tiers, widening the sums with
        :func:`_float32_sum_slop` so the bounds stay admissible.
        """
        materialized = self.engine.materialize(collection)
        if precision == "float32":
            env_lower, env_upper, env_scale = materialized.dtw_envelopes32(
                self.window
            )
            low, high, bound_scale = materialized.bounding_matrices32()
            query_low, query_high, query_scale = _query_bound_stacks32(
                self.engine, queries
            )
            scale = max(env_scale, bound_scale, query_scale)
            slop = _float32_sum_slop(scale, low.shape[1])
        else:
            env_lower, env_upper = materialized.dtw_envelopes(self.window)
            low, high = materialized.bounding_matrices()
            query_low, query_high = _query_bound_stacks(self.engine, queries)
            slop = 0.0
        n_queries = len(queries)
        n_series = len(collection)
        length = low.shape[1]
        lower = np.empty((n_queries, n_series))
        upper = np.empty((n_queries, n_series))
        for start, stop in _query_blocks(n_queries, n_series, length):
            block_low = query_low[start:stop, None, :]
            block_high = query_high[start:stop, None, :]
            gap = np.maximum(
                block_low - env_upper[None, :, :],
                env_lower[None, :, :] - block_high,
            )
            np.maximum(gap, 0.0, out=gap)
            _, span = interval_gap_and_span(
                low[None, :, :], high[None, :, :], block_low, block_high
            )
            if slop:
                lower[start:stop] = np.sqrt(np.maximum(
                    (gap * gap).sum(axis=2, dtype=np.float64) - slop, 0.0
                ))
                upper[start:stop] = np.sqrt(
                    (span * span).sum(axis=2, dtype=np.float64) + slop
                )
            else:
                lower[start:stop] = np.sqrt((gap * gap).sum(axis=2))
                upper[start:stop] = np.sqrt((span * span).sum(axis=2))
        return lower, upper

    def index_bounds(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        need_upper: bool = False,
    ) -> Optional[Tuple[np.ndarray, Optional[np.ndarray], float]]:
        """Segment-coarsened envelope bound (banded-DTW admissible).

        Candidate side: PAA summary of the cached band-inflated Keogh
        envelopes; query side: summary of its bounding intervals.  The
        per-point envelope overshoot averaged over a segment dominates
        the mean-interval gap, and Cauchy–Schwarz turns the weighted
        gap norm into a lower bound on LB_Keogh — hence on the banded
        DTW of every materialization pair.  Guarded with the same
        :data:`~repro.distances.dtw_batch.PRUNE_SLACK` as the full
        bound stage.
        """
        if (
            kind != "probability"
            or self.index_segments is None
            or len(queries) == 0
            or len(collection) == 0
        ):
            return None
        summary = self.engine.materialize(collection).envelope_paa_summary(
            self.window, self.index_segments
        )
        query_summary = _query_interval_summary(
            self.engine, queries, summary.n_segments
        )
        return (
            interval_lower_bound(query_summary, summary),
            None,
            PRUNE_SLACK,
        )

    def refine_matrix(
        self,
        kind: str,
        queries: Sequence,
        collection: Sequence,
        epsilon: Optional[np.ndarray],
        out: np.ndarray,
        undecided: np.ndarray,
        tau: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Seeded Monte Carlo refinement of the undecided cells.

        Every undecided pair draws its full seeded materialization
        stack; with ``tau`` given the stack is evaluated in escalating
        rounds through the DTW pruning cascade and stops at the first
        round whose hit count settles the ``>= τ`` verdict, otherwise
        the whole stack is evaluated (the fixed-``s`` path, exact
        per-pair parity).
        """
        if kind != "probability":
            return super().refine_matrix(
                kind, queries, collection, epsilon, out, undecided, tau=tau
            )
        refined = 0
        samples = 0
        if self._munich.method == "naive":
            # Exhaustive enumeration has no batch form; per-pair path
            # (tiny inputs only by construction).
            for row in np.flatnonzero(undecided.any(axis=1)):
                for index in np.flatnonzero(undecided[row]):
                    out[row, index] = self.probability(
                        queries[row], collection[index], float(epsilon[row])
                    )
                    refined += 1
            return refined, 0
        materialized = self.engine.materialize(collection)
        envelopes = materialized.dtw_envelopes(self.window)
        n_samples = self._munich.n_samples
        length = max(1, len(collection[0]) if len(collection) else 1)
        cell_block = max(1, MC_BATCH_ELEMENTS // (n_samples * length))
        # Row-major cell order — identical to the per-pair path, so
        # seeded streams line up draw for draw.
        cell_rows, cell_cols = np.nonzero(undecided)
        for start in range(0, cell_rows.size, cell_block):
            rows = cell_rows[start:start + cell_block]
            cols = cell_cols[start:start + cell_block]
            if tau is None:
                samples += self._mc_fixed_cells(
                    queries, collection, rows, cols, epsilon, envelopes,
                    out,
                )
            else:
                samples += self._mc_adaptive_cells(
                    queries, collection, rows, cols, epsilon, tau,
                    envelopes, out,
                )
            refined += rows.size
        return refined, samples

    def _draw_cells(self, queries, collection, rows, cols):
        """Seeded draw stacks for a batch of ``(row, col)`` cells.

        One :func:`draw_materialization_pairs` call per cell, in cell
        order — exactly the per-pair evaluator's consumption pattern,
        so a seeded technique materializes identical draws.
        """
        x_parts = []
        y_parts = []
        for row, col in zip(rows, cols):
            x_values, y_values = draw_materialization_pairs(
                queries[row],
                collection[col],
                self._munich.n_samples,
                self._munich.rng,
            )
            x_parts.append(x_values)
            y_parts.append(y_values)
        return x_parts, y_parts

    def _mc_fixed_cells(
        self, queries, collection, rows, cols, epsilon, envelopes, out
    ) -> int:
        """Full-``s`` Monte Carlo for a cell batch, one stacked cascade.

        All cells' draw stacks advance through one
        :func:`~repro.distances.dtw_batch.dtw_hits_paired` call —
        per-row envelope stacks pair each draw with its candidate's
        envelope, and the per-row ε vector pairs it with its query's
        threshold.  Per-row verdicts are independent, so the per-cell
        hit fractions are bit-identical to evaluating each cell alone.
        """
        env_lower, env_upper = envelopes
        n_samples = self._munich.n_samples
        x_parts, y_parts = self._draw_cells(queries, collection, rows, cols)
        hits = dtw_hits_paired(
            np.concatenate(x_parts),
            np.concatenate(y_parts),
            np.repeat(epsilon[rows], n_samples),
            window=self.window,
            envelope=(
                np.repeat(env_lower[cols], n_samples, axis=0),
                np.repeat(env_upper[cols], n_samples, axis=0),
            ),
        )
        out[rows, cols] = hits.reshape(rows.size, n_samples).mean(axis=1)
        return rows.size * n_samples

    def _mc_adaptive_cells(
        self, queries, collection, rows, cols, epsilon, tau, envelopes, out
    ) -> int:
        """Adaptive Monte Carlo for a cell batch (sequential stopping).

        The same seeded draws as :meth:`_mc_fixed_cells`, evaluated in
        geometrically escalating rounds; each round stacks the
        still-active cells' next draw chunks through one cascade call,
        then :func:`~repro.queries.planner.sequential_mc_verdict`
        retires every cell whose ``>= τ`` verdict is already
        determined (for a grid ``tau`` tuple: whose verdict is the same
        at every grid threshold).  Returns the number of draws actually
        evaluated.
        """
        env_lower, env_upper = envelopes
        n_samples = self._munich.n_samples
        schedule = adaptive_mc_schedule(n_samples)
        x_parts, y_parts = self._draw_cells(queries, collection, rows, cols)
        hit_counts = np.zeros(rows.size, dtype=np.intp)
        active = np.arange(rows.size)
        evaluated = 0
        total = 0
        for target in schedule:
            if active.size == 0:
                break
            chunk = target - evaluated
            x_stack = np.concatenate(
                [x_parts[i][evaluated:target] for i in active]
            )
            y_stack = np.concatenate(
                [y_parts[i][evaluated:target] for i in active]
            )
            chunk_cols = cols[active]
            chunk_hits = dtw_hits_paired(
                x_stack,
                y_stack,
                np.repeat(epsilon[rows[active]], chunk),
                window=self.window,
                envelope=(
                    np.repeat(env_lower[chunk_cols], chunk, axis=0),
                    np.repeat(env_upper[chunk_cols], chunk, axis=0),
                ),
            ).reshape(active.size, chunk)
            hit_counts[active] += chunk_hits.sum(axis=1)
            total += active.size * chunk
            evaluated = target
            survivors = []
            for i in active:
                verdict = sequential_mc_verdict(
                    int(hit_counts[i]), evaluated, n_samples, tau
                )
                if verdict is None:
                    survivors.append(i)
                else:
                    out[rows[i], cols[i]] = verdict
            active = np.asarray(survivors, dtype=np.intp)
        return total
