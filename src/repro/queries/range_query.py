"""Range queries: the certain RQ (Equation 1) and probabilistic PRQ (Eq. 2).

Both return *candidate indices* into a collection, leaving presentation to
the caller.  The query itself may be a member of the collection; pass its
index via ``exclude`` to implement the paper's protocol where every series
takes a turn as the query against the rest.

Both entry points are batched: the whole per-candidate score vector comes
from one :func:`~repro.distances.base.distance_profile` call (RQ) or one
:meth:`~repro.queries.techniques.Technique.distance_profile` /
``probability_profile`` call (PRQ), so collections are scanned at NumPy
speed rather than one Python call per candidate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import InvalidParameterError
from ..distances.base import Distance, distance_profile
from .techniques import Technique


def range_query(
    query_values: np.ndarray,
    collection_values: np.ndarray,
    epsilon: float,
    distance: Distance,
    exclude: Optional[int] = None,
) -> List[int]:
    """Certain-data range query ``RQ(Q, C, ε)`` (Equation 1).

    ``collection_values`` is an ``(N, n)`` matrix of exact series; returns
    the indices whose distance to ``query_values`` is ``<= ε``.  Euclidean
    queries route through the planner-backed session path (the same verb
    the fluent ``queries().using(...).range(ε)`` chain executes); other
    distance callables use one vectorized profile kernel.
    """
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    from ..distances.lp import euclidean as _euclidean

    if distance is _euclidean and len(collection_values) > 0:
        from .knn import planner_query_set
        from .techniques import EuclideanTechnique

        matrix = np.atleast_2d(
            np.asarray(collection_values, dtype=np.float64)
        )
        query_set = planner_query_set(
            EuclideanTechnique(),
            np.asarray(query_values, dtype=np.float64),
            matrix,
            exclude,
        )
        return [int(i) for i in query_set.range(float(epsilon)).matches[0]]
    distances = distance_profile(distance, query_values, collection_values)
    indices = np.flatnonzero(distances <= epsilon)
    if exclude is not None:
        indices = indices[indices != exclude]
    return indices.tolist()


def probabilistic_range_query(
    technique: Technique,
    query,
    collection: Sequence,
    epsilon: float,
    tau: Optional[float] = None,
    exclude: Optional[int] = None,
) -> List[int]:
    """``PRQ(Q, C, ε, τ)`` (Equation 2) under any :class:`Technique`.

    For distance techniques ``τ`` is ignored (their answer is exact); for
    probabilistic techniques it is required.  A shim over the session
    path: the query runs through the same planner verb as
    ``session.queries([...]).using(technique).prob_range(ε, τ)``, so
    free-function callers get the decision-mode pruning (index stage,
    adaptive Monte Carlo early stopping) of the fluent surface with
    guaranteed-identical match sets.
    """
    if epsilon < 0.0:
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    if len(collection) == 0:
        return []
    from .knn import planner_query_set

    query_set = planner_query_set(technique, query, collection, exclude)
    if technique.kind == "distance":
        result = query_set.range(float(epsilon))
    else:
        if tau is None:
            raise InvalidParameterError(
                f"{technique.name} requires a probability threshold tau"
            )
        result = query_set.prob_range(float(epsilon), float(tau))
    return [int(i) for i in result.matches[0]]


def result_set_from_scores(
    scores: np.ndarray,
    epsilon_or_tau: float,
    kind: str,
    exclude: Optional[int] = None,
) -> List[int]:
    """Derive a result set from precomputed per-candidate scores.

    ``scores`` holds distances (select ``<= ε``) or match probabilities
    (select ``>= τ``) depending on ``kind``; the evaluation layer uses this
    to sweep thresholds without recomputing scores.
    """
    if kind == "distance":
        mask = scores <= epsilon_or_tau
    elif kind == "probabilistic":
        mask = scores >= epsilon_or_tau
    else:
        raise InvalidParameterError(
            f"kind must be 'distance' or 'probabilistic', got {kind!r}"
        )
    indices = np.flatnonzero(mask)
    if exclude is not None:
        indices = indices[indices != exclude]
    return indices.tolist()
