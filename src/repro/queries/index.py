"""Summarization-index plan stage: candidate pruning before any bound.

:class:`IndexStage` is the planner's first stage for techniques that
publish a PAA summary geometry (``Technique.index_segments``).  It asks
the technique for admissible index bounds
(:meth:`~repro.queries.techniques.Technique.index_bounds`) and retires
cells the summary alone already decides:

* **probability** workloads — cells whose lower bound exceeds ε can
  contain no materialization within range, so their probability is
  exactly ``0.0`` (the same argument :class:`BoundStage` uses, but from
  the ``S``-segment summary instead of full-length stacks);
* **range** (decision-mode distance) workloads — cells with
  ``lower > ε`` are certain non-matches and are recorded as ``+inf``;
* **kNN** workloads — each row's pruning threshold is the ``k``-th
  smallest *upper* bound among eligible candidates: any cell whose
  lower bound exceeds it is strictly beaten by at least ``k``
  candidates and can never enter the top-``k``, even under the stable
  break-ties-by-index rule (its true distance is strictly larger than
  the ``k`` winners').

Pruned cells never reach the refine kernels, which is what turns the
planner's O(M·N) scans into candidate-set scans.  The stage is a no-op
— sound but useless — whenever the technique has no index, the workload
carries no decision information (plain ``distance_matrix``), or index
pruning is switched off by the governing
:class:`~repro.queries.planner.PlanPolicy` (``mode="never_index"`` or
``use_index=False`` — what the CLI's ``--no-index`` sets on the default
policy).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from .planner import (
    PlanContext,
    PlanStage,
    effective_index_enabled,
    get_default_policy,
    set_default_policy,
)


def set_index_enabled(enabled: bool) -> None:
    """Flip index pruning on the process-wide default plan policy.

    Kept as the stable entry point for the CLI's ``--no-index``; it is
    now a shim over :func:`~repro.queries.planner.set_default_policy`
    (``use_index`` field) rather than its own module-global, so
    sessions, the service daemon, and ``explain()`` all observe one
    consistent setting.
    """
    set_default_policy(
        replace(get_default_policy(), use_index=bool(enabled))
    )


def index_enabled() -> bool:
    """Whether the default plan policy enables summarization-index pruning."""
    return effective_index_enabled(None)


def knn_candidate_thresholds(
    upper: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-row kNN pruning thresholds from an upper-bound matrix.

    Returns, for each query row, the ``k``-th smallest upper bound over
    eligible candidates (``exclude`` marks at most one self-match column
    per row, ``-1`` for none).  Rows with at most ``k`` eligible
    candidates get ``+inf`` — nothing may be pruned there, which keeps
    shard-local pruning exact even when a shard is narrower than ``k``.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    bounds = np.array(upper, dtype=np.float64, copy=True)
    n_queries, n_candidates = bounds.shape
    eligible = np.full(n_queries, n_candidates, dtype=np.intp)
    if exclude is not None:
        exclude = np.asarray(exclude, dtype=np.intp)
        if exclude.shape != (n_queries,):
            raise InvalidParameterError(
                f"exclude must hold one index per query row, got shape "
                f"{exclude.shape} for {n_queries} rows"
            )
        rows = np.flatnonzero(exclude >= 0)
        bounds[rows, exclude[rows]] = np.inf
        eligible[rows] -= 1
    thresholds = np.full(n_queries, np.inf)
    selectable = eligible > k
    if np.any(selectable):
        thresholds[selectable] = np.partition(
            bounds[selectable], k - 1, axis=1
        )[:, k - 1]
    return thresholds


#: Column-block width of the blocked kNN index scan over mapped
#: collections.  Per-block bound matrices are ``(M, 131072)`` — small
#: enough to stay cache-resident through the threshold update and the
#: pruning comparison, so the scan's DRAM traffic is dominated by one
#: streaming read of the ``(N, S)`` summary tables.
KNN_BLOCK_COLUMNS = 131_072


def _blocked_knn_prune(context: PlanContext) -> bool:
    """Blocked kNN index pruning for large immutable (mapped) collections.

    Walks the collection in :data:`KNN_BLOCK_COLUMNS`-wide shards,
    maintaining each row's ``k`` smallest upper bounds; the final
    per-row threshold is the global ``k``-th smallest upper bound —
    identical to :func:`knn_candidate_thresholds` — and every cell with
    a lower bound beyond it is provably outside the top-``k``.  Returns
    ``False`` (caller falls back to the one-shot path) when the
    collection is small, mutable, or not shardable.
    """
    collection = context.collection
    shard = getattr(collection, "shard", None)
    n_queries, n_candidates = context.values.shape
    if (
        shard is None
        or not getattr(collection, "immutable_items", False)
        or n_candidates <= KNN_BLOCK_COLUMNS
    ):
        return False
    k = context.knn_k
    exclude = context.exclude
    best = np.full((n_queries, k), np.inf)
    blocks = []
    for start in range(0, n_candidates, KNN_BLOCK_COLUMNS):
        stop = min(start + KNN_BLOCK_COLUMNS, n_candidates)
        bounds = context.technique.index_bounds(
            "distance",
            context.queries,
            shard(start, stop),
            need_upper=True,
        )
        if bounds is None:
            return False
        lower, upper, slack = bounds
        if exclude is not None:
            rows = np.flatnonzero((exclude >= start) & (exclude < stop))
            if rows.size:
                upper[rows, exclude[rows] - start] = np.inf
        # The k smallest of a union are the k smallest of each side's k
        # smallest; partitioning the block in place avoids copying it.
        upper.partition(k - 1, axis=1)
        best = np.partition(
            np.concatenate([best, upper[:, :k]], axis=1), k - 1, axis=1
        )[:, :k]
        blocks.append((start, stop, lower, slack))
    # The max of each row's k smallest upper bounds is the k-th smallest
    # overall.  When a row has fewer than k eligible candidates this is
    # +inf (nothing pruned); with exactly k, every eligible cell's lower
    # bound sits at or below it, so none of them can be pruned either.
    thresholds = best.max(axis=1)
    for start, stop, lower, slack in blocks:
        guard = (thresholds * (1.0 + slack))[:, None]
        pruned = context.undecided[:, start:stop] & (lower > guard)
        context.values[:, start:stop][pruned] = np.inf
        context.undecided[:, start:stop] &= ~pruned
    return True


class IndexStage(PlanStage):
    """Prune candidates from the collection's PAA summarization index."""

    name = "index"

    def run(self, context: PlanContext) -> Tuple[int, int]:
        if not effective_index_enabled(context.policy):
            return 0, 0
        kind = context.kind
        if kind == "probability":
            if context.epsilons is None:
                return 0, 0
        elif kind == "distance":
            if context.knn_k is None and context.epsilons is None:
                return 0, 0
        else:
            return 0, 0
        need_upper = kind == "distance" and context.knn_k is not None
        if need_upper and _blocked_knn_prune(context):
            return 0, 0
        bounds = context.technique.index_bounds(
            kind, context.queries, context.collection, need_upper=need_upper
        )
        if bounds is None:
            return 0, 0
        lower, upper, slack = bounds
        if need_upper:
            thresholds = knn_candidate_thresholds(
                upper, context.knn_k, context.exclude
            )
            guard = (thresholds * (1.0 + slack))[:, None]
        else:
            guard = (context.epsilons * (1.0 + slack))[:, None]
        pruned = context.undecided & (lower > guard)
        context.values[pruned] = 0.0 if kind == "probability" else np.inf
        context.undecided &= ~pruned
        return 0, 0
