"""Quality metrics: precision, recall, F1 (Equation 14), confidence bands.

The paper scores every technique by comparing its query result set against
the ground-truth answer ("the percentage of the truly similar uncertain
time series that are found" = recall, "...identified by the algorithm,
which are truly similar" = precision) and reports averages with 95%
confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Set

#: z-score of the 95% two-sided normal confidence interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F1 of one query's result set."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (Equation 14)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return (
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        )


def score_result_set(
    result: Iterable[int], ground_truth: Set[int]
) -> PrecisionRecall:
    """Score a result set against the truly-similar set.

    Conventions for empty sets: an empty result has precision 1 if there
    was nothing to find, else 0; recall over an empty ground truth is 1.
    (With the paper's protocol the ground truth always has exactly k
    members, so the conventions only matter for edge-case tests.)
    """
    result_set = set(int(i) for i in result)
    true_positives = len(result_set & ground_truth)
    if result_set:
        precision = true_positives / len(result_set)
    else:
        precision = 1.0 if not ground_truth else 0.0
    recall = true_positives / len(ground_truth) if ground_truth else 1.0
    return PrecisionRecall(precision=precision, recall=recall)


@dataclass(frozen=True)
class MeanWithCI:
    """A sample mean with its 95% confidence half-width."""

    mean: float
    ci95: float
    n: int

    @property
    def low(self) -> float:
        """Lower edge of the confidence interval."""
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        """Upper edge of the confidence interval."""
        return self.mean + self.ci95

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95:.3f}"


def mean_with_ci(values: Sequence[float]) -> MeanWithCI:
    """Sample mean and normal-approximation 95% confidence half-width."""
    data = list(values)
    n = len(data)
    if n == 0:
        return MeanWithCI(mean=float("nan"), ci95=float("nan"), n=0)
    mean = sum(data) / n
    if n == 1:
        return MeanWithCI(mean=mean, ci95=0.0, n=1)
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    half_width = _Z95 * math.sqrt(variance / n)
    return MeanWithCI(mean=mean, ci95=half_width, n=n)
