"""The experiment harness: the paper's comparison methodology end to end.

One :func:`run_similarity_experiment` call reproduces the full protocol of
Section 4.1.2 on one dataset and one perturbation scenario:

1. the exact series are the ground truth; the k nearest neighbors of each
   query (under exact Euclidean) form its true answer set;
2. every series is perturbed once per run — a single-observation form for
   the pdf-based techniques and, when MUNICH participates, a repeated-
   observation form;
3. per query, each technique's ε comes from its own distance between the
   perturbed query and the perturbed 10th-NN anchor (ε_eucl / ε_dust /
   filtered ε); probabilistic techniques additionally receive the optimal
   τ found by sweeping the grid on their precomputed match probabilities;
4. result sets are scored with precision / recall / F1 and averaged with
   95% confidence intervals.

Per-query wall-clock time of the scoring kernel is recorded, which is what
the time-performance figures (11–12) report.

Scoring modes
-------------

The default ``scoring="matrix"`` answers the whole protocol through the
session API (:mod:`repro.queries.session`): one all-pairs
``distance_matrix`` / ``probability_matrix`` kernel per technique scores
every query row at once, each query's ε is read straight off its anchor
column of the same (calibration) matrix, and per-query time is the
amortized kernel time.  ``scoring="profile"`` keeps the one-vectorized-
call-per-query path — it produces identical F1 numbers and exists as the
reference the matrix path is benchmarked and regression-tested against
(``benchmarks/bench_matrix.py``).  :func:`set_default_scoring` flips the
process-wide default (the CLI's ``--scoring`` flag).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.collection import Collection
from ..core.errors import InvalidParameterError
from ..core.rng import SeedLike, spawn
from ..core.series import TimeSeries
from ..perturbation.scenarios import PerturbationScenario
from ..queries.planner import PruningStats
from ..queries.session import SessionConfig, SimilaritySession
from ..queries.techniques import Technique
from ..queries.thresholds import (
    PAPER_K,
    QueryCalibration,
    calibrate_queries,
    select_query_indices,
    technique_epsilon,
)
from .metrics import MeanWithCI, PrecisionRecall, mean_with_ci, score_result_set
from .tau import DEFAULT_TAU_GRID, optimal_tau, results_at_tau

#: Samples per timestamp for MUNICH's repeated-observation input — the
#: paper's Figure 4 setting ("for each timestamp, we have 5 samples").
DEFAULT_MUNICH_SAMPLES = 5

#: Recognized scoring modes (see the module docstring).
SCORING_MODES = ("matrix", "profile")

_default_scoring = "matrix"
_default_workers = 1
_stats_log: Optional[List] = None


def enable_stats_log() -> None:
    """Start collecting per-technique :class:`PruningStats` records.

    The matrix scoring path appends ``(technique_name, stats)`` pairs
    for every plan it executes; :func:`drain_stats_log` retrieves and
    clears them.  This is what backs the CLI's ``--stats`` flag.
    """
    global _stats_log
    _stats_log = []


def drain_stats_log() -> List:
    """Collected ``(technique_name, PruningStats)`` pairs (and reset)."""
    global _stats_log
    drained = _stats_log or []
    if _stats_log is not None:
        _stats_log = []
    return drained


def _log_stats(name: str, stats: Optional[PruningStats]) -> None:
    if _stats_log is not None and stats is not None:
        _stats_log.append((name, stats))


def set_default_scoring(mode: str) -> None:
    """Set the process-wide default scoring mode (``"matrix"``/``"profile"``)."""
    global _default_scoring
    if mode not in SCORING_MODES:
        raise InvalidParameterError(
            f"scoring must be one of {SCORING_MODES}, got {mode!r}"
        )
    _default_scoring = mode


def get_default_scoring() -> str:
    """The scoring mode used when ``run_similarity_experiment`` gets none."""
    return _default_scoring


def set_default_workers(n_workers: int) -> None:
    """Set the process-wide default worker count (the CLI's ``--workers``).

    ``1`` keeps the harness single-process; ``> 1`` shards the matrix
    scoring path across a
    :class:`~repro.queries.parallel.ShardedExecutor` worker pool.
    """
    global _default_workers
    if n_workers < 1:
        raise InvalidParameterError(
            f"n_workers must be >= 1, got {n_workers}"
        )
    _default_workers = int(n_workers)


def get_default_workers() -> int:
    """The worker count used when ``run_similarity_experiment`` gets none."""
    return _default_workers


@dataclass(frozen=True)
class QueryOutcome:
    """One query's scores under one technique."""

    query_index: int
    epsilon: float
    scores: PrecisionRecall
    result_size: int
    elapsed_seconds: float

    @property
    def f1(self) -> float:
        """F1 of this query's result set."""
        return self.scores.f1


@dataclass
class TechniqueOutcome:
    """All queries' scores for one technique on one dataset/scenario.

    ``pruning_stats`` carries the scoring plan's filter-and-refine
    accounting (matrix scoring path only): candidates decided per
    stage, refinements run, Monte Carlo samples evaluated, and
    per-stage wall time.
    """

    technique_name: str
    queries: List[QueryOutcome] = field(default_factory=list)
    tau: Optional[float] = None
    pruning_stats: Optional[PruningStats] = None

    def f1(self) -> MeanWithCI:
        """Mean F1 with a 95% confidence band."""
        return mean_with_ci([q.scores.f1 for q in self.queries])

    def precision(self) -> MeanWithCI:
        """Mean precision with a 95% confidence band."""
        return mean_with_ci([q.scores.precision for q in self.queries])

    def recall(self) -> MeanWithCI:
        """Mean recall with a 95% confidence band."""
        return mean_with_ci([q.scores.recall for q in self.queries])

    def mean_query_seconds(self) -> float:
        """Average wall-clock seconds per query."""
        if not self.queries:
            return float("nan")
        return float(np.mean([q.elapsed_seconds for q in self.queries]))


@dataclass
class ExperimentResult:
    """Everything one harness run produced."""

    dataset_name: str
    scenario_name: str
    n_series: int
    series_length: int
    n_queries: int
    techniques: Dict[str, TechniqueOutcome]

    def f1_row(self) -> Dict[str, float]:
        """``{technique: mean F1}`` — a row of the paper's bar charts."""
        return {
            name: outcome.f1().mean for name, outcome in self.techniques.items()
        }


def run_similarity_experiment(
    exact: Collection[TimeSeries],
    scenario: PerturbationScenario,
    techniques: Sequence[Technique],
    k: int = PAPER_K,
    n_queries: Optional[int] = None,
    seed: SeedLike = None,
    munich_samples: int = DEFAULT_MUNICH_SAMPLES,
    tau_grid: Sequence[float] = DEFAULT_TAU_GRID,
    fixed_tau: Optional[float] = None,
    scoring: Optional[str] = None,
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the full comparison protocol; see the module docstring.

    Parameters
    ----------
    exact:
        Ground-truth series (z-normalized — dataset loaders do this).
    scenario:
        Perturbation recipe (error family, σ structure, misreporting).
    techniques:
        The measures to compare.  Probabilistic ones get the optimal τ
        unless ``fixed_tau`` pins it.
    k:
        Ground-truth answer size (10 in the paper).
    n_queries:
        Number of query series (sampled deterministically); default all.
    munich_samples:
        Repeated observations per timestamp for multisample techniques.
    scoring:
        ``"matrix"`` (all-pairs kernels, the default) or ``"profile"``
        (per-query vectorized rows); ``None`` uses
        :func:`get_default_scoring`.
    n_workers:
        Worker processes for the matrix scoring path (``None`` uses
        :func:`get_default_workers`; ``1`` stays single-process).  The
        sharded results match single-process scoring to 1e-9, so F1
        numbers are unchanged.
    """
    if scoring is None:
        scoring = _default_scoring
    if scoring not in SCORING_MODES:
        raise InvalidParameterError(
            f"scoring must be one of {SCORING_MODES}, got {scoring!r}"
        )
    if n_workers is None:
        n_workers = _default_workers
    if n_workers < 1:
        raise InvalidParameterError(
            f"n_workers must be >= 1, got {n_workers}"
        )
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if len(exact) <= k:
        raise InvalidParameterError(
            f"collection of {len(exact)} series cannot support k={k} "
            f"ground-truth neighbors"
        )
    exact_values = exact.values_matrix()
    calibrations = calibrate_queries(exact_values, k=k)

    pdf_collection = _perturb_pdf(exact, scenario, seed)
    multisample_collection = None
    if any(t.input_kind == "multisample" for t in techniques):
        multisample_collection = _perturb_multisample(
            exact, scenario, munich_samples, seed
        )

    query_rng = spawn(seed, "query-selection")
    query_indices = select_query_indices(
        len(exact), n_queries if n_queries is not None else len(exact), query_rng
    )

    outcomes: Dict[str, TechniqueOutcome] = {}
    for technique in techniques:
        technique.reset()
        collection = (
            multisample_collection
            if technique.input_kind == "multisample"
            else pdf_collection
        )
        if scoring == "matrix":
            outcome = _evaluate_technique_matrix(
                technique,
                collection,
                calibrations,
                query_indices,
                tau_grid=tau_grid,
                fixed_tau=fixed_tau,
                n_workers=n_workers,
            )
        elif technique.kind == "distance":
            outcome = _evaluate_distance_technique(
                technique, collection, calibrations, query_indices
            )
        else:
            outcome = _evaluate_probabilistic_technique(
                technique,
                collection,
                calibrations,
                query_indices,
                tau_grid=tau_grid,
                fixed_tau=fixed_tau,
            )
        outcomes[technique.name] = outcome

    return ExperimentResult(
        dataset_name=exact.name or "<unnamed>",
        scenario_name=scenario.name,
        n_series=len(exact),
        series_length=exact.series_length,
        n_queries=len(query_indices),
        techniques=outcomes,
    )


def _perturb_pdf(
    exact: Collection[TimeSeries],
    scenario: PerturbationScenario,
    seed: SeedLike,
) -> List:
    """One pdf-form perturbation of every series (independent streams)."""
    return [
        scenario.apply(series, spawn(seed, "perturb-pdf", index))
        for index, series in enumerate(exact)
    ]


def _perturb_multisample(
    exact: Collection[TimeSeries],
    scenario: PerturbationScenario,
    samples_per_timestamp: int,
    seed: SeedLike,
) -> List:
    """One multisample-form perturbation of every series."""
    return [
        scenario.apply_multisample(
            series, samples_per_timestamp, spawn(seed, "perturb-ms", index)
        )
        for index, series in enumerate(exact)
    ]


def _candidate_indices(n_series: int, query_index: int) -> np.ndarray:
    """Every index except the query itself."""
    indices = np.arange(n_series)
    return indices[indices != query_index]


def _evaluate_technique_matrix(
    technique: Technique,
    collection: Sequence,
    calibrations: List[QueryCalibration],
    query_indices: np.ndarray,
    tau_grid: Sequence[float],
    fixed_tau: Optional[float],
    n_workers: int = 1,
) -> TechniqueOutcome:
    """Score every query in one all-pairs kernel (the session API path).

    Each query's ε is its anchor entry of the same matrix used for the
    result sets (distance techniques) or of the calibration matrix
    (probabilistic ones, the paper's ε_eucl).  Per-query elapsed time is
    the amortized matrix-kernel time — the ``(M, N)`` kernel has no
    meaningful per-row clock.  With ``n_workers > 1`` the kernels run
    sharded on the session's worker pool (identical scores to 1e-9).
    """
    config = SessionConfig(n_workers=n_workers)
    with SimilaritySession(collection, config=config) as session:
        return _score_matrix_session(
            session,
            technique,
            collection,
            calibrations,
            query_indices,
            tau_grid=tau_grid,
            fixed_tau=fixed_tau,
        )


def _score_matrix_session(
    session: SimilaritySession,
    technique: Technique,
    collection: Sequence,
    calibrations: List[QueryCalibration],
    query_indices: np.ndarray,
    tau_grid: Sequence[float],
    fixed_tau: Optional[float],
) -> TechniqueOutcome:
    query_set = session.queries(query_indices).using(technique)
    n_series = len(collection)
    n_queries = len(query_indices)
    anchors = np.array(
        [calibrations[i].anchor_index for i in query_indices], dtype=np.intp
    )

    if technique.kind == "distance":
        result = query_set.profile_matrix()
        matrix = result.values
        epsilons = matrix[np.arange(n_queries), anchors]
        outcome = TechniqueOutcome(
            technique_name=technique.name,
            pruning_stats=result.pruning_stats,
        )
        _log_stats(technique.name, result.pruning_stats)
        for position, query_index in enumerate(query_indices):
            calibration = calibrations[query_index]
            candidates = _candidate_indices(n_series, query_index)
            distances = matrix[position][candidates]
            selected = candidates[distances <= epsilons[position]]
            outcome.queries.append(
                QueryOutcome(
                    query_index=int(query_index),
                    epsilon=float(epsilons[position]),
                    scores=score_result_set(
                        selected.tolist(), set(calibration.ground_truth)
                    ),
                    result_size=int(selected.size),
                    elapsed_seconds=result.per_query_seconds,
                )
            )
        return outcome

    calibration_matrix = query_set.calibration_matrix()
    epsilons = calibration_matrix.values[np.arange(n_queries), anchors]
    result = query_set.profile_matrix(epsilon=epsilons)
    probabilities: List[np.ndarray] = []
    candidate_lists: List[np.ndarray] = []
    ground_truths: List[frozenset] = []
    for position, query_index in enumerate(query_indices):
        candidates = _candidate_indices(n_series, query_index)
        probabilities.append(result.values[position][candidates])
        candidate_lists.append(candidates)
        ground_truths.append(calibrations[query_index].ground_truth)

    if fixed_tau is not None:
        tau = fixed_tau
    else:
        tau = optimal_tau(
            probabilities, candidate_lists, ground_truths, tau_grid
        ).best_tau

    scores = results_at_tau(probabilities, candidate_lists, ground_truths, tau)
    outcome = TechniqueOutcome(
        technique_name=technique.name,
        tau=tau,
        pruning_stats=result.pruning_stats,
    )
    _log_stats(technique.name, result.pruning_stats)
    for position, query_index in enumerate(query_indices):
        outcome.queries.append(
            QueryOutcome(
                query_index=int(query_index),
                epsilon=float(epsilons[position]),
                scores=scores[position],
                result_size=int(
                    np.count_nonzero(probabilities[position] >= tau)
                ),
                elapsed_seconds=result.per_query_seconds,
            )
        )
    return outcome


def _evaluate_distance_technique(
    technique: Technique,
    collection: Sequence,
    calibrations: List[QueryCalibration],
    query_indices: np.ndarray,
) -> TechniqueOutcome:
    outcome = TechniqueOutcome(technique_name=technique.name)
    for query_index in query_indices:
        calibration = calibrations[query_index]
        query = collection[query_index]
        candidates = _candidate_indices(len(collection), query_index)
        # One batch kernel scores the whole collection; the same profile
        # yields ε (the anchor entry — a distance technique's calibration
        # distance is its distance) and the result set.
        started = time.perf_counter()
        profile = technique.distance_profile(query, collection)
        elapsed = time.perf_counter() - started
        epsilon = technique_epsilon(
            technique, collection, calibration, profile=profile
        )
        distances = profile[candidates]
        selected = candidates[distances <= epsilon]
        outcome.queries.append(
            QueryOutcome(
                query_index=int(query_index),
                epsilon=epsilon,
                scores=score_result_set(
                    selected.tolist(), set(calibration.ground_truth)
                ),
                result_size=int(selected.size),
                elapsed_seconds=elapsed,
            )
        )
    return outcome


def _evaluate_probabilistic_technique(
    technique: Technique,
    collection: Sequence,
    calibrations: List[QueryCalibration],
    query_indices: np.ndarray,
    tau_grid: Sequence[float],
    fixed_tau: Optional[float],
) -> TechniqueOutcome:
    probabilities: List[np.ndarray] = []
    candidate_lists: List[np.ndarray] = []
    epsilons: List[float] = []
    elapsed_times: List[float] = []
    ground_truths: List[frozenset] = []

    for query_index in query_indices:
        calibration = calibrations[query_index]
        query = collection[query_index]
        epsilon = technique_epsilon(technique, collection, calibration)
        candidates = _candidate_indices(len(collection), query_index)
        started = time.perf_counter()
        probs = technique.probability_profile(query, collection, epsilon)[
            candidates
        ]
        elapsed = time.perf_counter() - started
        probabilities.append(probs)
        candidate_lists.append(candidates)
        epsilons.append(epsilon)
        elapsed_times.append(elapsed)
        ground_truths.append(calibration.ground_truth)

    if fixed_tau is not None:
        tau = fixed_tau
    else:
        tau = optimal_tau(
            probabilities, candidate_lists, ground_truths, tau_grid
        ).best_tau

    scores = results_at_tau(probabilities, candidate_lists, ground_truths, tau)
    outcome = TechniqueOutcome(technique_name=technique.name, tau=tau)
    for position, query_index in enumerate(query_indices):
        selected_count = int(
            np.count_nonzero(probabilities[position] >= tau)
        )
        outcome.queries.append(
            QueryOutcome(
                query_index=int(query_index),
                epsilon=epsilons[position],
                scores=scores[position],
                result_size=selected_count,
                elapsed_seconds=elapsed_times[position],
            )
        )
    return outcome
