"""Optimal probability-threshold (τ) search.

MUNICH and PROUD answer PRQs relative to a probability threshold τ whose
choice "has a considerable impact on the accuracy" and for which "the only
way to pick the correct value is by experimental evaluation" (paper
Section 6).  The paper reports results at the *optimal* τ; this module
automates that: given the per-candidate match probabilities of every
query, sweep a τ grid and keep the value maximizing mean F1.

Because probabilities are computed once and thresholded many times, the
sweep costs almost nothing on top of a single evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from .metrics import PrecisionRecall, score_result_set

#: τ grid used when the caller does not supply one.  The linear part covers
#: the conventional range; the log-spaced low end matters for PROUD, whose
#: match probabilities are systematically small — its squared-distance mean
#: carries a ``+2nσ²`` error-variance term that the observation-calibrated ε
#: does not, pushing even true matches' probabilities toward zero.  The
#: optimal τ then lives well below 0.05, and a grid without that region
#: would unfairly cripple PROUD (the paper's "optimal probabilistic
#: threshold, determined after repeated experiments" searches freely).
DEFAULT_TAU_GRID: Tuple[float, ...] = tuple(
    [1e-12, 1e-9, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.02]
    + [round(0.05 * i, 2) for i in range(1, 20)]
    + [0.99, 0.999]
)


@dataclass(frozen=True)
class TauSearchResult:
    """Outcome of an optimal-τ sweep."""

    best_tau: float
    best_mean_f1: float
    mean_f1_by_tau: Dict[float, float]


def results_at_tau(
    probabilities: Sequence[np.ndarray],
    candidate_indices: Sequence[np.ndarray],
    ground_truths: Sequence[frozenset],
    tau: float,
) -> List[PrecisionRecall]:
    """Score every query at one τ.

    ``probabilities[q][j]`` is the match probability of candidate
    ``candidate_indices[q][j]`` for query ``q``.
    """
    scores = []
    for probs, indices, truth in zip(
        probabilities, candidate_indices, ground_truths
    ):
        selected = indices[probs >= tau]
        scores.append(score_result_set(selected.tolist(), set(truth)))
    return scores


def optimal_tau(
    probabilities: Sequence[np.ndarray],
    candidate_indices: Sequence[np.ndarray],
    ground_truths: Sequence[frozenset],
    tau_grid: Sequence[float] = DEFAULT_TAU_GRID,
) -> TauSearchResult:
    """Sweep ``tau_grid`` and return the mean-F1-maximizing τ.

    Ties favor the *largest* τ (the more selective threshold), matching the
    spirit of a probabilistic guarantee.
    """
    if not tau_grid:
        raise InvalidParameterError("tau_grid must not be empty")
    if not len(probabilities) == len(candidate_indices) == len(ground_truths):
        raise InvalidParameterError(
            "probabilities, candidate_indices and ground_truths must align"
        )
    mean_f1_by_tau: Dict[float, float] = {}
    best_tau, best_f1 = None, -1.0
    for tau in tau_grid:
        if not 0.0 < tau <= 1.0:
            raise InvalidParameterError(f"tau values must be in (0, 1], got {tau}")
        scores = results_at_tau(
            probabilities, candidate_indices, ground_truths, tau
        )
        mean_f1 = float(np.mean([s.f1 for s in scores])) if scores else 0.0
        mean_f1_by_tau[tau] = mean_f1
        if mean_f1 >= best_f1:
            best_tau, best_f1 = tau, mean_f1
    return TauSearchResult(
        best_tau=float(best_tau),
        best_mean_f1=best_f1,
        mean_f1_by_tau=mean_f1_by_tau,
    )
