"""Evaluation: metrics, optimal-τ search, and the experiment harness."""

from __future__ import annotations

from .harness import (
    DEFAULT_MUNICH_SAMPLES,
    SCORING_MODES,
    ExperimentResult,
    QueryOutcome,
    TechniqueOutcome,
    get_default_scoring,
    get_default_workers,
    run_similarity_experiment,
    set_default_scoring,
    set_default_workers,
)
from .metrics import (
    MeanWithCI,
    PrecisionRecall,
    mean_with_ci,
    score_result_set,
)
from .tau import (
    DEFAULT_TAU_GRID,
    TauSearchResult,
    optimal_tau,
    results_at_tau,
)

__all__ = [
    "run_similarity_experiment",
    "ExperimentResult",
    "TechniqueOutcome",
    "QueryOutcome",
    "DEFAULT_MUNICH_SAMPLES",
    "SCORING_MODES",
    "set_default_scoring",
    "get_default_scoring",
    "set_default_workers",
    "get_default_workers",
    "PrecisionRecall",
    "score_result_set",
    "MeanWithCI",
    "mean_with_ci",
    "optimal_tau",
    "results_at_tau",
    "TauSearchResult",
    "DEFAULT_TAU_GRID",
]
