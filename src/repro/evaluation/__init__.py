"""Evaluation: metrics, optimal-τ search, and the experiment harness."""

from __future__ import annotations

from .harness import (
    DEFAULT_MUNICH_SAMPLES,
    ExperimentResult,
    QueryOutcome,
    TechniqueOutcome,
    run_similarity_experiment,
)
from .metrics import (
    MeanWithCI,
    PrecisionRecall,
    mean_with_ci,
    score_result_set,
)
from .tau import (
    DEFAULT_TAU_GRID,
    TauSearchResult,
    optimal_tau,
    results_at_tau,
)

__all__ = [
    "run_similarity_experiment",
    "ExperimentResult",
    "TechniqueOutcome",
    "QueryOutcome",
    "DEFAULT_MUNICH_SAMPLES",
    "PrecisionRecall",
    "score_result_set",
    "MeanWithCI",
    "mean_with_ci",
    "optimal_tau",
    "results_at_tau",
    "TauSearchResult",
    "DEFAULT_TAU_GRID",
]
