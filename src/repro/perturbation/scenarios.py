"""The paper's named perturbation scenarios.

Each experiment perturbs the ground-truth data in a specific way:

* constant σ, one error family — the σ sweeps of Figures 4–7 and 11–12;
* mixed standard deviations, one family — Figures 8 and 13–17: "the error
  for 20% of the values has standard deviation 1, and the rest 80% has
  standard deviation 0.4";
* mixed families — Figure 9: each timestamp's error drawn from one of
  uniform / normal / exponential, again with the 20/80 σ split;
* misreported σ — Figure 10: the techniques are (wrongly) told the error
  is normal with constant σ = 0.7.

A scenario builds, per series, an *actual* error model (used to draw noise)
and a *reported* model (what pdf-based techniques are told).  It also
exposes ``proud_std``: PROUD can only consume a single constant σ (paper
Section 3.1), so each scenario states the constant it feeds PROUD — the
paper used 0.7 for the mixed scenarios.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

import numpy as np

from ..core.errors import InvalidParameterError
from ..core.rng import SeedLike, make_rng
from ..core.series import TimeSeries
from ..core.uncertain import ErrorModel, UncertainTimeSeries
from ..distributions import make_distribution
from .perturb import perturb, perturb_multisample

#: The σ split used by every "mixed" experiment in the paper.
MIXED_FRACTION_HIGH = 0.2
MIXED_STD_HIGH = 1.0
MIXED_STD_LOW = 0.4
#: The constant σ the paper feeds PROUD under mixed errors (Section 4.2.3).
MIXED_PROUD_STD = 0.7


class PerturbationScenario(abc.ABC):
    """A recipe for perturbing ground-truth series.

    Subclasses define :meth:`build_models`; the base class provides the
    apply helpers shared by the harness.
    """

    @abc.abstractmethod
    def build_models(
        self, length: int, rng: np.random.Generator
    ) -> Tuple[ErrorModel, ErrorModel]:
        """Return ``(actual_model, reported_model)`` for one series.

        ``rng`` drives any per-series randomness (e.g. which 20% of
        timestamps get the high σ).
        """

    @property
    @abc.abstractmethod
    def proud_std(self) -> float:
        """The constant error σ that PROUD is told under this scenario."""

    @property
    def name(self) -> str:
        """Human-readable scenario name for reports."""
        return type(self).__name__

    def apply(self, series: TimeSeries, rng: SeedLike = None) -> UncertainTimeSeries:
        """Perturb one series, attaching the reported model."""
        generator = make_rng(rng)
        actual, reported = self.build_models(len(series), generator)
        return perturb(series, actual, generator, reported_model=reported)

    def apply_multisample(
        self, series: TimeSeries, samples_per_timestamp: int, rng: SeedLike = None
    ):
        """Perturb one series into MUNICH's repeated-observation model."""
        generator = make_rng(rng)
        actual, _ = self.build_models(len(series), generator)
        return perturb_multisample(series, actual, samples_per_timestamp, generator)


class ConstantScenario(PerturbationScenario):
    """One error family at one σ for every timestamp (Figures 4–7, 11–12)."""

    def __init__(self, family: str, std: float) -> None:
        self.distribution = make_distribution(family, std)
        self.family = family
        self.std = float(std)

    @property
    def name(self) -> str:
        return f"constant({self.family}, std={self.std:g})"

    @property
    def proud_std(self) -> float:
        return self.std

    def build_models(
        self, length: int, rng: np.random.Generator
    ) -> Tuple[ErrorModel, ErrorModel]:
        model = ErrorModel.constant(self.distribution, length)
        return model, model


class MixedStdScenario(PerturbationScenario):
    """One family, two σ levels split across timestamps (Figure 8).

    ``fraction_high`` of the timestamps (chosen uniformly at random per
    series) get ``std_high``; the rest get ``std_low``.  The reported model
    equals the actual model — DUST is *correctly informed* here, which is
    why it gains a small edge in Figure 8.
    """

    def __init__(
        self,
        family: str = "normal",
        fraction_high: float = MIXED_FRACTION_HIGH,
        std_high: float = MIXED_STD_HIGH,
        std_low: float = MIXED_STD_LOW,
        proud_std: float = MIXED_PROUD_STD,
    ) -> None:
        if not 0.0 <= fraction_high <= 1.0:
            raise InvalidParameterError(
                f"fraction_high must be in [0, 1], got {fraction_high}"
            )
        self.family = family
        self.fraction_high = float(fraction_high)
        self.high = make_distribution(family, std_high)
        self.low = make_distribution(family, std_low)
        self._proud_std = float(proud_std)

    @property
    def name(self) -> str:
        return (
            f"mixed-std({self.family}, {self.fraction_high:.0%} at "
            f"std={self.high.std:g}, rest at std={self.low.std:g})"
        )

    @property
    def proud_std(self) -> float:
        return self._proud_std

    def build_models(
        self, length: int, rng: np.random.Generator
    ) -> Tuple[ErrorModel, ErrorModel]:
        n_high = int(round(self.fraction_high * length))
        high_positions = set(
            rng.choice(length, size=n_high, replace=False).tolist()
        ) if n_high else set()
        distributions = [
            self.high if i in high_positions else self.low for i in range(length)
        ]
        model = ErrorModel(distributions)
        return model, model


class MixedFamilyScenario(PerturbationScenario):
    """Different families *and* σ levels across timestamps (Figure 9).

    Every timestamp is assigned a family drawn uniformly from ``families``
    and a σ from the 20/80 split.  PROUD cannot represent this at all; DUST
    can, if given the per-timestamp models — which the reported model
    provides.
    """

    def __init__(
        self,
        families: Sequence[str] = ("uniform", "normal", "exponential"),
        fraction_high: float = MIXED_FRACTION_HIGH,
        std_high: float = MIXED_STD_HIGH,
        std_low: float = MIXED_STD_LOW,
        proud_std: float = MIXED_PROUD_STD,
    ) -> None:
        if not families:
            raise InvalidParameterError("at least one family is required")
        if not 0.0 <= fraction_high <= 1.0:
            raise InvalidParameterError(
                f"fraction_high must be in [0, 1], got {fraction_high}"
            )
        self.families = tuple(families)
        self.fraction_high = float(fraction_high)
        self.std_high = float(std_high)
        self.std_low = float(std_low)
        self._proud_std = float(proud_std)
        # Pre-build the (family, σ) pool: distributions are value objects,
        # so sharing them across series is safe.
        self._pool = {
            (family, std): make_distribution(family, std)
            for family in self.families
            for std in (self.std_high, self.std_low)
        }

    @property
    def name(self) -> str:
        return (
            f"mixed-family({'+'.join(self.families)}, "
            f"{self.fraction_high:.0%} at std={self.std_high:g})"
        )

    @property
    def proud_std(self) -> float:
        return self._proud_std

    def build_models(
        self, length: int, rng: np.random.Generator
    ) -> Tuple[ErrorModel, ErrorModel]:
        n_high = int(round(self.fraction_high * length))
        high_positions = set(
            rng.choice(length, size=n_high, replace=False).tolist()
        ) if n_high else set()
        family_choices = rng.choice(len(self.families), size=length)
        distributions = []
        for i in range(length):
            family = self.families[int(family_choices[i])]
            std = self.std_high if i in high_positions else self.std_low
            distributions.append(self._pool[(family, std)])
        model = ErrorModel(distributions)
        return model, model


class MisreportedScenario(PerturbationScenario):
    """Actual errors from ``base`` scenario, but techniques are told a
    constant (wrong) model instead (Figure 10).

    The paper's Figure 10 draws mixed-σ normal errors while informing DUST
    that σ is a constant 0.7; accuracy collapses to Euclidean's, showing
    that DUST's edge depends entirely on accurate error knowledge.
    """

    def __init__(
        self,
        base: PerturbationScenario,
        reported_family: str = "normal",
        reported_std: float = MIXED_PROUD_STD,
    ) -> None:
        self.base = base
        self.reported = make_distribution(reported_family, reported_std)
        self._reported_std = float(reported_std)

    @property
    def name(self) -> str:
        return (
            f"misreported(base={self.base.name}, "
            f"claimed {self.reported.family} std={self._reported_std:g})"
        )

    @property
    def proud_std(self) -> float:
        return self._reported_std

    def build_models(
        self, length: int, rng: np.random.Generator
    ) -> Tuple[ErrorModel, ErrorModel]:
        actual, _ = self.base.build_models(length, rng)
        reported = ErrorModel.constant(self.reported, length)
        return actual, reported


def paper_mixed_scenario(family: str) -> MixedStdScenario:
    """The 20%/σ=1.0 + 80%/σ=0.4 scenario for ``family`` (Figs 8, 15–17)."""
    return MixedStdScenario(family=family)


def paper_mixed_family_scenario() -> MixedFamilyScenario:
    """The uniform+normal+exponential mixed scenario of Figure 9."""
    return MixedFamilyScenario()


def paper_misreported_scenario() -> MisreportedScenario:
    """The Figure 10 scenario: mixed-σ normal errors, claimed constant 0.7."""
    return MisreportedScenario(MixedStdScenario(family="normal"))
