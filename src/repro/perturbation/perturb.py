"""Turning exact series into uncertain series.

The paper's methodology (Section 4.1.1): "we used existing time series
datasets with exact values as the ground truth, and subsequently introduced
uncertainty through perturbation."  These helpers implement that step for
both uncertainty models:

* :func:`perturb` — one noisy observation per timestamp plus an error model
  (the pdf-based input of PROUD / DUST / Euclidean / UMA / UEMA);
* :func:`perturb_multisample` — ``s`` noisy observations per timestamp
  (MUNICH's repeated-observation input).

The *reported* error model attached to the output may differ from the
*actual* model used to draw the noise; the misinformation experiments
(Figure 10) rely on exactly that split.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import InvalidParameterError, LengthMismatchError
from ..core.rng import SeedLike, make_rng
from ..core.series import TimeSeries
from ..core.uncertain import (
    ErrorModel,
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)


def perturb(
    series: TimeSeries,
    actual_model: ErrorModel,
    rng: SeedLike = None,
    reported_model: Optional[ErrorModel] = None,
) -> UncertainTimeSeries:
    """Perturb ``series`` with one error draw per timestamp.

    Errors are sampled from ``actual_model``; the returned uncertain series
    carries ``reported_model`` (defaults to the actual one) as its believed
    error knowledge.
    """
    if actual_model.length != len(series):
        raise LengthMismatchError(
            len(series), actual_model.length, "series vs actual error model"
        )
    if reported_model is not None and reported_model.length != len(series):
        raise LengthMismatchError(
            len(series), reported_model.length, "series vs reported error model"
        )
    generator = make_rng(rng)
    observations = series.values + actual_model.sample(generator)
    return UncertainTimeSeries(
        observations,
        reported_model if reported_model is not None else actual_model,
        label=series.label,
        name=series.name,
    )


def perturb_multisample(
    series: TimeSeries,
    actual_model: ErrorModel,
    samples_per_timestamp: int,
    rng: SeedLike = None,
) -> MultisampleUncertainTimeSeries:
    """Perturb ``series`` into ``s`` repeated observations per timestamp.

    Each observation is an independent draw ``value + error`` — sampling
    from the per-timestamp error distribution exactly as MUNICH's model
    assumes (paper Section 3.1: "this can be thought of as sampling from
    the distribution of the value errors").
    """
    if samples_per_timestamp < 1:
        raise InvalidParameterError(
            f"samples_per_timestamp must be >= 1, got {samples_per_timestamp}"
        )
    if actual_model.length != len(series):
        raise LengthMismatchError(
            len(series), actual_model.length, "series vs actual error model"
        )
    generator = make_rng(rng)
    columns = [
        series.values + actual_model.sample(generator)
        for _ in range(samples_per_timestamp)
    ]
    samples = np.column_stack(columns)
    return MultisampleUncertainTimeSeries(
        samples, label=series.label, name=series.name
    )
