"""Perturbation framework: exact ground truth -> uncertain observations."""

from __future__ import annotations

from .perturb import perturb, perturb_multisample
from .scenarios import (
    MIXED_FRACTION_HIGH,
    MIXED_PROUD_STD,
    MIXED_STD_HIGH,
    MIXED_STD_LOW,
    ConstantScenario,
    MisreportedScenario,
    MixedFamilyScenario,
    MixedStdScenario,
    PerturbationScenario,
    paper_misreported_scenario,
    paper_mixed_family_scenario,
    paper_mixed_scenario,
)

__all__ = [
    "perturb",
    "perturb_multisample",
    "PerturbationScenario",
    "ConstantScenario",
    "MixedStdScenario",
    "MixedFamilyScenario",
    "MisreportedScenario",
    "paper_mixed_scenario",
    "paper_mixed_family_scenario",
    "paper_misreported_scenario",
    "MIXED_FRACTION_HIGH",
    "MIXED_STD_HIGH",
    "MIXED_STD_LOW",
    "MIXED_PROUD_STD",
]
