"""Zero-mean error distributions used to model measurement uncertainty.

The paper perturbs exact ("ground truth") series with errors drawn from
uniform, normal, and exponential distributions, all centered at zero and
parameterized by standard deviation (Section 4.1.1).  This package provides
those three families, finite mixtures of them, and a by-name factory.
"""

from __future__ import annotations

from typing import Dict, Type

from ..core.errors import DistributionError
from .base import ErrorDistribution
from .exponential import ExponentialError
from .mixture import MixtureError, with_tails
from .normal import NormalError
from .uniform import UniformError

#: Registry of scalar (non-mixture) families, keyed by family name.
FAMILIES: Dict[str, Type[ErrorDistribution]] = {
    NormalError.family: NormalError,
    UniformError.family: UniformError,
    ExponentialError.family: ExponentialError,
}

#: The three error families the paper sweeps over, in paper order.
PAPER_FAMILIES = ("normal", "uniform", "exponential")


def make_distribution(family: str, std: float) -> ErrorDistribution:
    """Construct an error distribution from a family name and a std.

    >>> make_distribution("normal", 0.4)
    NormalError(std=0.4)
    """
    try:
        cls = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise DistributionError(
            f"unknown error family {family!r}; known families: {known}"
        ) from None
    return cls(std)


__all__ = [
    "ErrorDistribution",
    "NormalError",
    "UniformError",
    "ExponentialError",
    "MixtureError",
    "with_tails",
    "make_distribution",
    "FAMILIES",
    "PAPER_FAMILIES",
]
