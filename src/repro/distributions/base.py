"""Abstract interface for zero-mean error distributions.

The paper perturbs exact series with measurement errors drawn from uniform,
normal, and exponential distributions "with zero mean and varying standard
deviation within interval [0.2, 2.0]" (Section 4.1.1).  Every concrete
distribution in this package is therefore parameterized by its standard
deviation and centered at zero.

The interface exposes exactly what the techniques need:

* ``sample``     — perturbation (all techniques) and repeated observations
                   (MUNICH);
* ``pdf``        — DUST's φ function (numeric cross-correlation of the two
                   error densities);
* ``cdf``        — analytic checks and tests;
* ``std``        — PROUD (which only consumes the error standard deviation).
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from ..core.errors import DistributionError


class ErrorDistribution(abc.ABC):
    """A zero-mean distribution of measurement error.

    Concrete subclasses are immutable value objects: two instances with the
    same family and parameters compare equal and hash equal, which lets the
    DUST lookup-table cache key on them directly.
    """

    #: Short family name, e.g. ``"normal"``; set by subclasses.
    family: str = "abstract"

    def __init__(self, std: float) -> None:
        std = float(std)
        if not np.isfinite(std) or std <= 0.0:
            raise DistributionError(
                f"error standard deviation must be positive and finite, got {std}"
            )
        self._std = std

    @property
    def std(self) -> float:
        """Standard deviation of the error."""
        return self._std

    @property
    def variance(self) -> float:
        """Variance of the error (``std ** 2``)."""
        return self._std * self._std

    @property
    def mean(self) -> float:
        """All paper error models are centered: the mean is always zero."""
        return 0.0

    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density evaluated element-wise at ``x``."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution evaluated element-wise at ``x``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        """Draw ``size`` error values using ``rng``."""

    @abc.abstractmethod
    def support(self) -> Tuple[float, float]:
        """Interval outside which the pdf is (numerically) zero.

        Unbounded tails are reported as a high-quantile cut suitable for
        numeric integration grids (DUST lookup tables).
        """

    def with_std(self, std: float) -> "ErrorDistribution":
        """Return a distribution of the same family with a new ``std``."""
        return type(self)(std)

    # Value-object behaviour -------------------------------------------------

    def _key(self) -> tuple:
        return (self.family, round(self._std, 12))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorDistribution):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(std={self._std:g})"
