"""Zero-mean normal (Gaussian) error distribution."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .base import ErrorDistribution

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)

#: Quantile at which we cut the (unbounded) Gaussian tail for numeric grids.
_TAIL_SIGMAS = 8.0


class NormalError(ErrorDistribution):
    """Gaussian measurement error ``N(0, std^2)``.

    This is the paper's default perturbation model, and the case in which
    DUST provably reduces to (a monotone transform of) the Euclidean
    distance.
    """

    family = "normal"

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        z = x / self._std
        return np.exp(-0.5 * z * z) / (self._std * _SQRT2PI)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        from scipy.special import erf

        return 0.5 * (1.0 + erf(x / (self._std * _SQRT2)))

    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        return rng.normal(loc=0.0, scale=self._std, size=size)

    def support(self) -> Tuple[float, float]:
        cut = _TAIL_SIGMAS * self._std
        return (-cut, cut)
