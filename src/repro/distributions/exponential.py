"""Zero-mean (shifted) exponential error distribution.

The standard exponential with rate ``λ`` has mean and standard deviation
``1/λ``.  The paper requires *zero-mean* errors, so we use the shifted
variable ``E = Exp(λ) - 1/λ``: its mean is zero, its standard deviation is
``1/λ = std``, and its support is ``[-std, ∞)``.  This skewed, one-sided
error is the paper's "hardest case" (Section 5.2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import ErrorDistribution

#: Quantile (in units of std) at which the upper tail is cut for grids.
#: exp(-20) ~ 2e-9, negligible mass beyond.
_TAIL_STDS = 20.0


class ExponentialError(ErrorDistribution):
    """Shifted exponential measurement error ``Exp(1/std) - std``."""

    family = "exponential"

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        rate = 1.0 / self._std
        shifted = x + self._std
        with np.errstate(over="ignore"):
            density = rate * np.exp(-rate * shifted)
        return np.where(shifted >= 0.0, density, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        rate = 1.0 / self._std
        shifted = x + self._std
        with np.errstate(over="ignore"):
            cumulative = 1.0 - np.exp(-rate * np.maximum(shifted, 0.0))
        return np.where(shifted >= 0.0, cumulative, 0.0)

    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        return rng.exponential(scale=self._std, size=size) - self._std

    def support(self) -> Tuple[float, float]:
        return (-self._std, _TAIL_STDS * self._std)
