"""Zero-mean uniform error distribution.

A uniform distribution on ``[-a, a]`` has standard deviation ``a / sqrt(3)``,
so an error with standard deviation ``std`` is uniform on
``[-sqrt(3)*std, +sqrt(3)*std]``.

The bounded support is what breaks DUST's φ function (Section 4.2.1 of the
paper): the cross-correlation of two bounded densities is exactly zero for
large observed differences, and ``-log 0`` is undefined.  The paper's
workaround — "adding two tails to the uniform error" — is available as
:func:`repro.distributions.mixture.with_tails`.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .base import ErrorDistribution

_SQRT3 = math.sqrt(3.0)


class UniformError(ErrorDistribution):
    """Uniform measurement error on ``[-sqrt(3)*std, sqrt(3)*std]``."""

    family = "uniform"

    @property
    def half_width(self) -> float:
        """Half width ``a`` of the support ``[-a, a]``."""
        return _SQRT3 * self._std

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        a = self.half_width
        density = 1.0 / (2.0 * a)
        return np.where(np.abs(x) <= a, density, 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        a = self.half_width
        return np.clip((x + a) / (2.0 * a), 0.0, 1.0)

    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        a = self.half_width
        return rng.uniform(low=-a, high=a, size=size)

    def support(self) -> Tuple[float, float]:
        a = self.half_width
        return (-a, a)
