"""Finite mixtures of error distributions.

Used for two purposes in the reproduction:

* the DUST uniform-error workaround (Section 4.2.1): the paper adds "two
  tails to the uniform error, so that the error probability density function
  is never exactly zero" — :func:`with_tails` builds that mixture;
* sanity experiments where an error model is itself a blend of families.

Note that the paper's *mixed error distribution* experiments (Figures 8–10,
15–17) do **not** use mixtures at a single timestamp: they assign different
error distributions to different timestamps.  That heterogeneity lives in
:class:`repro.core.uncertain.ErrorModel`, not here.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..core.errors import DistributionError
from .base import ErrorDistribution
from .normal import NormalError


class MixtureError(ErrorDistribution):
    """Weighted mixture of zero-mean error distributions.

    The components all have zero mean, so the mixture does too, and its
    variance is the weighted average of the component variances.
    """

    family = "mixture"

    def __init__(
        self,
        components: Sequence[ErrorDistribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) == 0:
            raise DistributionError("mixture requires at least one component")
        if len(components) != len(weights):
            raise DistributionError(
                f"got {len(components)} components but {len(weights)} weights"
            )
        weight_array = np.asarray(weights, dtype=np.float64)
        if np.any(weight_array < 0.0) or weight_array.sum() <= 0.0:
            raise DistributionError("mixture weights must be non-negative, sum > 0")
        weight_array = weight_array / weight_array.sum()

        variance = float(
            sum(w * c.variance for w, c in zip(weight_array, components))
        )
        super().__init__(std=float(np.sqrt(variance)))
        self._components: Tuple[ErrorDistribution, ...] = tuple(components)
        self._weights = weight_array

    @property
    def components(self) -> Tuple[ErrorDistribution, ...]:
        """The component distributions."""
        return self._components

    @property
    def weights(self) -> np.ndarray:
        """Normalized component weights (read-only copy)."""
        return self._weights.copy()

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = np.zeros_like(x, dtype=np.float64)
        for weight, component in zip(self._weights, self._components):
            total += weight * component.pdf(x)
        return total

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = np.zeros_like(x, dtype=np.float64)
        for weight, component in zip(self._weights, self._components):
            total += weight * component.cdf(x)
        return total

    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        flat_size = int(np.prod(size)) if not np.isscalar(size) else int(size)
        choices = rng.choice(len(self._components), size=flat_size, p=self._weights)
        out = np.empty(flat_size, dtype=np.float64)
        for index, component in enumerate(self._components):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = component.sample(rng, count)
        return out.reshape(size)

    def support(self) -> Tuple[float, float]:
        lows, highs = zip(*(c.support() for c in self._components))
        return (min(lows), max(highs))

    def with_std(self, std: float) -> "MixtureError":
        """Rescale every component so the mixture reaches ``std``."""
        if std <= 0.0:
            raise DistributionError(f"std must be positive, got {std}")
        factor = std / self.std
        rescaled = [c.with_std(c.std * factor) for c in self._components]
        return MixtureError(rescaled, self._weights)

    def _key(self) -> tuple:
        return (
            self.family,
            tuple(c._key() for c in self._components),
            tuple(np.round(self._weights, 12)),
        )


def with_tails(
    base: ErrorDistribution,
    tail_weight: float = 0.01,
    tail_scale: float = 4.0,
) -> MixtureError:
    """Blend ``base`` with a wide Gaussian so its pdf is never exactly zero.

    This is the paper's workaround for DUST on uniform errors: ``φ`` may
    evaluate to zero on bounded supports, and ``-log 0`` degenerates.  A
    ``tail_weight`` fraction of mass is moved to a normal component whose
    standard deviation is ``tail_scale`` times the base's.

    The paper reports the workaround "proved useful, but did not completely
    solve the problem" — our lookup tables additionally floor φ at a tiny
    positive value (see :mod:`repro.dust.tables`).
    """
    if not 0.0 < tail_weight < 1.0:
        raise DistributionError(
            f"tail_weight must be in (0, 1), got {tail_weight}"
        )
    if tail_scale <= 0.0:
        raise DistributionError(f"tail_scale must be positive, got {tail_scale}")
    tail = NormalError(std=tail_scale * base.std)
    return MixtureError([base, tail], [1.0 - tail_weight, tail_weight])
