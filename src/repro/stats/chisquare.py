"""Chi-square goodness-of-fit test for uniformity.

Section 4.1.1 of the paper checks DUST's assumption that time-series
*values* are uniformly distributed: "According to the Chi-square test, the
hypothesis that the datasets follow the uniform distribution was rejected
(for all datasets) with confidence level α = 0.01."  This module implements
that test (Pearson statistic over equal-width bins against the uniform
expectation, p-value from the chi-square survival function) so the
reproduction can re-run the same check on its datasets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.errors import InvalidParameterError


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square uniformity test."""

    statistic: float
    p_value: float
    degrees_of_freedom: int
    n_bins: int
    n_values: int

    def rejects_uniformity(self, alpha: float = 0.01) -> bool:
        """True when uniformity is rejected at significance level ``alpha``."""
        return self.p_value < alpha


def chi_square_uniformity_test(
    values: Iterable[float], n_bins: int = 0
) -> ChiSquareResult:
    """Test whether ``values`` could come from a uniform distribution.

    The value range ``[min, max]`` is split into ``n_bins`` equal-width bins
    (default: ``ceil(2 * n^(2/5))``, a standard rule keeping expected counts
    well above 5), observed counts are compared against the flat expectation
    with Pearson's statistic, and the p-value is the chi-square survival
    function at ``n_bins - 1`` degrees of freedom.
    """
    data = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                      dtype=np.float64).ravel()
    if data.size < 8:
        raise InvalidParameterError(
            f"chi-square test needs at least 8 values, got {data.size}"
        )
    if not np.all(np.isfinite(data)):
        raise InvalidParameterError("values must be finite")
    if n_bins <= 0:
        n_bins = max(4, int(math.ceil(2.0 * data.size ** 0.4)))
    low, high = float(data.min()), float(data.max())
    if high <= low:
        # A constant sample is maximally non-uniform over any interval.
        return ChiSquareResult(
            statistic=float("inf"), p_value=0.0,
            degrees_of_freedom=n_bins - 1, n_bins=n_bins, n_values=data.size,
        )
    observed, _ = np.histogram(data, bins=n_bins, range=(low, high))
    expected = data.size / n_bins
    statistic = float(((observed - expected) ** 2 / expected).sum())
    p_value = chi2_sf(statistic, n_bins - 1)
    return ChiSquareResult(
        statistic=statistic, p_value=p_value,
        degrees_of_freedom=n_bins - 1, n_bins=n_bins, n_values=data.size,
    )


def chi2_sf(x: float, k: int) -> float:
    """Survival function of the chi-square distribution with ``k`` dof.

    ``P(X > x) = Q(k/2, x/2)``, the regularized upper incomplete gamma
    function, computed with a series / continued-fraction split (Numerical
    Recipes style) so the test has no scipy dependency.
    """
    if k < 1:
        raise InvalidParameterError(f"degrees of freedom must be >= 1, got {k}")
    if x <= 0.0:
        return 1.0
    if not math.isfinite(x):
        return 0.0
    a = 0.5 * k
    z = 0.5 * x
    if z < a + 1.0:
        return 1.0 - _gamma_p_series(a, z)
    return _gamma_q_continued_fraction(a, z)


def _gamma_p_series(a: float, x: float) -> float:
    """Regularized lower incomplete gamma via its power series."""
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(1000):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_q_continued_fraction(a: float, x: float) -> float:
    """Regularized upper incomplete gamma via Lentz's continued fraction."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return math.exp(-x + a * math.log(x) - math.lgamma(a)) * h
