"""Haar wavelet transform and synopsis.

Section 4.3 of the paper notes that PROUD can be applied "on top of a Haar
wavelet synopsis", trading a small accuracy loss for CPU time at or below
Euclidean cost.  This module provides the orthonormal Haar DWT, its inverse,
and a top-coefficient synopsis with the energy-preservation property that
makes Euclidean distances computable in the wavelet domain (Parseval).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.errors import InvalidParameterError

_SQRT2 = np.sqrt(2.0)


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def haar_transform(values: np.ndarray) -> Tuple[np.ndarray, int]:
    """Orthonormal Haar DWT of ``values``.

    The input is zero-padded to the next power of two (its original length
    is returned so :func:`inverse_haar_transform` can undo the padding).
    With the orthonormal normalization, the transform preserves the
    Euclidean norm exactly.
    """
    data = np.asarray(values, dtype=np.float64).ravel()
    if data.size == 0:
        raise InvalidParameterError("cannot transform an empty series")
    original_length = data.size
    padded = _next_power_of_two(original_length)
    work = np.zeros(padded)
    work[:original_length] = data

    coefficients = np.empty(padded)
    length = padded
    while length > 1:
        half = length // 2
        even = work[0:length:2]
        odd = work[1:length:2]
        coefficients[half:length] = (even - odd) / _SQRT2
        work[:half] = (even + odd) / _SQRT2
        length = half
    coefficients[0] = work[0]
    return coefficients, original_length


def inverse_haar_transform(
    coefficients: np.ndarray, original_length: int
) -> np.ndarray:
    """Invert :func:`haar_transform`, trimming the zero padding."""
    coeffs = np.asarray(coefficients, dtype=np.float64).ravel()
    padded = coeffs.size
    if padded == 0 or padded & (padded - 1):
        raise InvalidParameterError(
            f"coefficient length must be a power of two, got {padded}"
        )
    if not 1 <= original_length <= padded:
        raise InvalidParameterError(
            f"original_length {original_length} out of range (1..{padded})"
        )
    work = coeffs.copy()
    length = 1
    while length < padded:
        approx = work[:length].copy()
        # Copy: the interleaved writes below overlap the detail region.
        detail = work[length:2 * length].copy()
        work[0:2 * length:2] = (approx + detail) / _SQRT2
        work[1:2 * length:2] = (approx - detail) / _SQRT2
        length *= 2
    return work[:original_length]


@dataclass(frozen=True)
class HaarSynopsis:
    """Top-k Haar coefficients of a series (sparse energy summary).

    ``indices``/``coefficients`` hold the ``k`` largest-magnitude transform
    coefficients; ``padded_length`` and ``original_length`` allow lossless
    bookkeeping.  Distances between synopses lower-bound true Euclidean
    distances computed on the full coefficient vectors of the two series
    only approximately; the approximation error vanishes as ``k`` grows.
    """

    indices: np.ndarray
    coefficients: np.ndarray
    padded_length: int
    original_length: int

    @property
    def n_coefficients(self) -> int:
        """Number of retained coefficients."""
        return int(self.indices.size)

    def dense(self) -> np.ndarray:
        """Full-length coefficient vector with zeros at dropped positions."""
        out = np.zeros(self.padded_length)
        out[self.indices] = self.coefficients
        return out

    def reconstruct(self) -> np.ndarray:
        """Approximate series reconstructed from the kept coefficients."""
        return inverse_haar_transform(self.dense(), self.original_length)

    def energy(self) -> float:
        """Retained energy (sum of squared kept coefficients)."""
        return float(np.sum(self.coefficients**2))


def haar_synopsis(values: np.ndarray, n_coefficients: int) -> HaarSynopsis:
    """Build a :class:`HaarSynopsis` keeping the ``n_coefficients`` largest
    magnitude coefficients (ties broken by position, deterministic)."""
    if n_coefficients < 1:
        raise InvalidParameterError(
            f"n_coefficients must be >= 1, got {n_coefficients}"
        )
    coefficients, original_length = haar_transform(values)
    k = min(n_coefficients, coefficients.size)
    # stable selection: sort by (-|coefficient|, index)
    order = np.lexsort((np.arange(coefficients.size), -np.abs(coefficients)))
    kept = np.sort(order[:k])
    return HaarSynopsis(
        indices=kept,
        coefficients=coefficients[kept],
        padded_length=coefficients.size,
        original_length=original_length,
    )


def synopsis_distance(a: HaarSynopsis, b: HaarSynopsis) -> float:
    """Euclidean distance between two synopses in coefficient space.

    Because the Haar transform is orthonormal, this approximates (and for
    full synopses equals) the Euclidean distance of the original series.
    """
    if a.padded_length != b.padded_length:
        raise InvalidParameterError(
            f"synopses have different padded lengths: "
            f"{a.padded_length} != {b.padded_length}"
        )
    return float(np.linalg.norm(a.dense() - b.dense()))
