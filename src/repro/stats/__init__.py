"""Statistics substrate: normal distribution, chi-square test, Haar wavelets."""

from __future__ import annotations

from .chisquare import ChiSquareResult, chi2_sf, chi_square_uniformity_test
from .normal import (
    normal_cdf,
    normal_ppf,
    std_normal_cdf,
    std_normal_pdf,
    std_normal_ppf,
)
from .wavelets import (
    HaarSynopsis,
    haar_synopsis,
    haar_transform,
    inverse_haar_transform,
    synopsis_distance,
)

__all__ = [
    "std_normal_pdf",
    "std_normal_cdf",
    "std_normal_ppf",
    "normal_cdf",
    "normal_ppf",
    "ChiSquareResult",
    "chi_square_uniformity_test",
    "chi2_sf",
    "haar_transform",
    "inverse_haar_transform",
    "HaarSynopsis",
    "haar_synopsis",
    "synopsis_distance",
]
