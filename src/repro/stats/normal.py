"""Standard-normal cdf and inverse cdf.

PROUD needs both directions (paper Section 2.2): the cdf to express
``Pr(distance_norm <= eps)`` through the error function, and the inverse cdf
to turn the probability threshold ``τ`` into ``ε_limit`` ("looking up the
statistics tables").  We implement them from scratch — the cdf through
:func:`math.erf` and the inverse through Acklam's rational approximation
refined by one Halley step — so the PROUD implementation is self-contained;
scipy is used only in tests to validate these functions.
"""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)

# Coefficients of Peter Acklam's inverse-normal-cdf approximation
# (relative error < 1.15e-9 before refinement).
_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def std_normal_pdf(x) -> np.ndarray:
    """Density of the standard normal, element-wise."""
    x = np.asarray(x, dtype=np.float64)
    return np.exp(-0.5 * x * x) / _SQRT2PI


def std_normal_cdf(x) -> np.ndarray:
    """Cumulative distribution of the standard normal, element-wise.

    Expressed through the error function, exactly as the paper notes
    (Equation 8 discussion).
    """
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * (1.0 + _vector_erf(x / _SQRT2))


def std_normal_ppf(p: float) -> float:
    """Inverse cdf (quantile function) of the standard normal.

    Raises :class:`ValueError` outside the open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = _poly(_C, q) / (_poly(_D, q) * q + 1.0)
    elif p <= _P_HIGH:
        q = p - 0.5
        r = q * q
        x = q * _poly(_A, r) / (_poly(_B, r) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -_poly(_C, q) / (_poly(_D, q) * q + 1.0)
    # One Halley refinement step drives the error to near machine precision.
    error = float(std_normal_cdf(x)) - p
    u = error * _SQRT2PI * math.exp(0.5 * x * x)
    x = x - u / (1.0 + 0.5 * x * u)
    return x


def normal_cdf(x, mean: float, std: float) -> np.ndarray:
    """Cdf of ``N(mean, std^2)``, element-wise."""
    if std <= 0.0:
        raise ValueError(f"std must be positive, got {std}")
    x = np.asarray(x, dtype=np.float64)
    return std_normal_cdf((x - mean) / std)


def normal_ppf(p: float, mean: float, std: float) -> float:
    """Quantile of ``N(mean, std^2)``."""
    if std <= 0.0:
        raise ValueError(f"std must be positive, got {std}")
    return mean + std * std_normal_ppf(p)


def _poly(coefficients, x: float) -> float:
    """Evaluate a polynomial with the leading coefficient first."""
    result = 0.0
    for coefficient in coefficients:
        result = result * x + coefficient
    return result


_vector_erf = np.vectorize(math.erf, otypes=[np.float64])
