"""Typed collections of (uncertain) time series.

The query definitions in the paper (Equations 1–2) operate over a collection
``C = {S1, ..., SN}``.  :class:`Collection` is a light ordered container used
for exact series, pdf-based uncertain series, and multi-sample series alike;
it adds the conveniences the harness needs (uniform-length checks, a values
matrix, label access) without hiding the underlying list.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, List, Optional, Sequence, TypeVar

import numpy as np

from .errors import InvalidSeriesError
from .series import TimeSeries
from .uncertain import MultisampleUncertainTimeSeries, UncertainTimeSeries

ItemT = TypeVar(
    "ItemT", TimeSeries, UncertainTimeSeries, MultisampleUncertainTimeSeries
)


class Collection(Generic[ItemT]):
    """An ordered collection of series, all of the same length.

    The equal-length requirement mirrors the paper's setting (whole-sequence
    matching with Lp/Euclidean-style distances requires aligned series).
    """

    __slots__ = ("_items", "name")

    def __init__(
        self,
        items: Iterable[ItemT],
        name: Optional[str] = None,
        *,
        _validated: bool = False,
    ) -> None:
        self._items: List[ItemT] = list(items)
        if not self._items:
            raise InvalidSeriesError("a collection must contain at least one series")
        # ``_validated`` is an internal escape hatch for views over items
        # that already passed this check (e.g. MappedCollection.shard):
        # the O(N) length scan would otherwise dominate blocked scans.
        if not _validated:
            lengths = {len(item) for item in self._items}
            if len(lengths) != 1:
                raise InvalidSeriesError(
                    f"all series in a collection must share one length, "
                    f"got {sorted(lengths)}"
                )
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ItemT]:
        return iter(self._items)

    def __getitem__(self, index: int) -> ItemT:
        return self._items[index]

    def __repr__(self) -> str:
        return (
            f"Collection(n_series={len(self)}, length={self.series_length}, "
            f"name={self.name!r})"
        )

    @property
    def series_length(self) -> int:
        """Length shared by every series in the collection."""
        return len(self._items[0])

    def labels(self) -> List[Optional[int]]:
        """Per-series class labels (``None`` when absent)."""
        return [getattr(item, "label", None) for item in self._items]

    def names(self) -> List[Optional[str]]:
        """Per-series names (``None`` when absent)."""
        return [getattr(item, "name", None) for item in self._items]

    def values_matrix(self) -> np.ndarray:
        """Stack point estimates into an ``(N, n)`` matrix.

        Exact series contribute their values; pdf-based uncertain series
        their observations; multi-sample series their per-timestamp means.
        """
        rows = []
        for item in self._items:
            if isinstance(item, TimeSeries):
                rows.append(item.values)
            elif isinstance(item, UncertainTimeSeries):
                rows.append(item.observations)
            else:
                rows.append(item.means())
        return np.vstack(rows)

    def subset(self, indices: Sequence[int]) -> "Collection[ItemT]":
        """Return a new collection of the items at ``indices`` (in order)."""
        return Collection([self._items[i] for i in indices], name=self.name)

    def map(self, transform) -> "Collection":
        """Apply ``transform`` to every item, returning a new collection."""
        return Collection([transform(item) for item in self._items], name=self.name)
