"""Memory-mapped collection storage: out-of-core similarity workloads.

The parallel scale-up (see :mod:`repro.queries.parallel`) shards an
``(M, N)`` workload across worker processes.  Shipping a collection to a
worker by pickling every series object copies the whole dataset once per
worker; for collections larger than RAM it is not possible at all.  This
module stores a collection as flat ``.npy`` matrices plus a small JSON
manifest, so any process — a pool worker, a later session, a different
machine sharing a filesystem — re-opens the values **zero-copy** through
``numpy``'s memory mapping and lets the OS page data in on demand.

On-disk layout (``save_collection(collection, directory)``)::

    directory/
        collection.json     # the manifest (see below)
        values.npy          # (N, n) float64 point estimates
        variances.npy       # (N, n) float64 error variances (pdf kind)
        samples.npy         # (N, n, s) float64 draws (multisample kind)

Manifest format (``collection.json``, version 1)::

    {
      "format": "repro-collection",
      "version": 1,
      "kind": "exact" | "pdf" | "multisample",
      "n_series": N, "length": n, "samples_per_timestamp": s,   # s: ms only
      "name": "...", "labels": [...], "series_names": [...],
      "arrays": {"values": "values.npy", ...},                  # per kind
      "distributions": [ {"family": "normal", "std": 0.4},      # pdf only:
                         {"family": "mixture",                  # dedup table
                          "weights": [...], "components": [...]} ],
      "error_models": [ {"code": 0} |                           # homogeneous
                        {"codes": [0, 1, ...]} ]                # per series
    }

:func:`load_collection` rebuilds a :class:`MappedCollection` whose series
objects hold **row views** of the mapped matrices (no copies; the arrays
are opened read-only) and whose materialization hooks
(:attr:`MappedCollection.mapped_values` and friends) let the query
engine's :class:`~repro.queries.engine.CollectionMaterialization` warm its
dense matrices straight from the map instead of re-stacking rows.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions import FAMILIES, make_distribution
from ..distributions.base import ErrorDistribution
from ..distributions.mixture import MixtureError
from .collection import Collection
from .errors import InvalidParameterError, InvalidSeriesError
from .series import TimeSeries
from .uncertain import (
    ErrorModel,
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)

#: File name of the JSON manifest inside a saved-collection directory.
MANIFEST_NAME = "collection.json"
#: Manifest schema marker / version (bump on incompatible changes).
MANIFEST_FORMAT = "repro-collection"
MANIFEST_VERSION = 1


class MappedCollectionError(InvalidSeriesError):
    """A saved collection directory or manifest is malformed."""


# ---------------------------------------------------------------------------
# Error-distribution (de)serialization
# ---------------------------------------------------------------------------


def _distribution_spec(distribution: ErrorDistribution) -> Dict:
    """JSON-serializable spec of one error distribution."""
    if isinstance(distribution, MixtureError):
        return {
            "family": "mixture",
            "weights": [float(w) for w in distribution.weights],
            "components": [
                _distribution_spec(c) for c in distribution.components
            ],
        }
    if distribution.family in FAMILIES:
        return {"family": distribution.family, "std": float(distribution.std)}
    raise MappedCollectionError(
        f"cannot serialize error distribution family "
        f"{distribution.family!r}; known families: "
        f"{sorted(FAMILIES)} + mixture"
    )


def _distribution_from_spec(spec: Dict) -> ErrorDistribution:
    """Rebuild an error distribution from its manifest spec."""
    family = spec.get("family")
    if family == "mixture":
        components = [
            _distribution_from_spec(c) for c in spec["components"]
        ]
        return MixtureError(components, spec["weights"])
    if family in FAMILIES:
        return make_distribution(family, spec["std"])
    raise MappedCollectionError(
        f"unknown error distribution family {family!r} in manifest"
    )


def _encode_error_models(
    items: Sequence[UncertainTimeSeries],
) -> Tuple[List[Dict], List[Dict]]:
    """Dedup every distinct distribution into a table + per-series codes."""
    table: Dict[ErrorDistribution, int] = {}
    models: List[Dict] = []
    for item in items:
        model = item.error_model
        if model.is_homogeneous:
            code = table.setdefault(model[0], len(table))
            models.append({"code": code})
        else:
            models.append({
                "codes": [
                    table.setdefault(d, len(table)) for d in model
                ]
            })
    specs = [_distribution_spec(d) for d in table]
    return specs, models


def _decode_error_model(
    entry: Dict, table: Sequence[ErrorDistribution], length: int
) -> ErrorModel:
    """Rebuild one series' error model from its manifest entry."""
    if "code" in entry:
        return ErrorModel.constant(table[entry["code"]], length)
    codes = entry["codes"]
    if len(codes) != length:
        raise MappedCollectionError(
            f"error-model codes length {len(codes)} != series length {length}"
        )
    return ErrorModel([table[code] for code in codes])


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------


def _collection_kind(items: Sequence) -> str:
    """The uniform series kind of a collection, or raise."""
    kinds = set()
    for item in items:
        if isinstance(item, UncertainTimeSeries):
            kinds.add("pdf")
        elif isinstance(item, MultisampleUncertainTimeSeries):
            kinds.add("multisample")
        elif isinstance(item, TimeSeries):
            kinds.add("exact")
        else:
            raise MappedCollectionError(
                f"cannot save series of type {type(item).__name__}"
            )
    if len(kinds) != 1:
        raise MappedCollectionError(
            f"a saved collection must hold one series kind, got "
            f"{sorted(kinds)}"
        )
    return kinds.pop()


def save_collection(collection: Sequence, directory: str) -> str:
    """Save ``collection`` under ``directory``; returns the manifest path.

    The collection must be non-empty and hold one series kind (exact /
    pdf / multisample).  Existing files in ``directory`` are overwritten.
    """
    items = list(collection)
    if not items:
        raise InvalidParameterError("cannot save an empty collection")
    kind = _collection_kind(items)
    os.makedirs(directory, exist_ok=True)

    manifest: Dict = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "kind": kind,
        "n_series": len(items),
        "length": len(items[0]),
        "name": getattr(collection, "name", None),
        "labels": [getattr(item, "label", None) for item in items],
        "series_names": [getattr(item, "name", None) for item in items],
        "arrays": {},
    }

    def _write(array_name: str, matrix: np.ndarray) -> None:
        file_name = f"{array_name}.npy"
        np.save(
            os.path.join(directory, file_name),
            np.ascontiguousarray(matrix, dtype=np.float64),
        )
        manifest["arrays"][array_name] = file_name

    if kind == "multisample":
        _write("samples", np.stack([item.samples for item in items]))
        manifest["samples_per_timestamp"] = items[0].samples_per_timestamp
    else:
        _write("values", np.vstack([item.values for item in items]))
    if kind == "pdf":
        _write(
            "variances",
            np.vstack([item.error_model.variances() for item in items]),
        )
        specs, models = _encode_error_models(items)
        manifest["distributions"] = specs
        manifest["error_models"] = models

    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return manifest_path


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


class MappedCollection(Collection):
    """A collection whose dense matrices are memory-mapped from disk.

    Behaves exactly like :class:`~repro.core.collection.Collection` — the
    items are real series objects — but every series holds a **view** into
    the mapped value/variance/sample matrices, and the ``mapped_*``
    attributes let :class:`~repro.queries.engine.CollectionMaterialization`
    adopt the maps directly (zero copies, OS-paged).

    Pickling a mapped collection transfers only the manifest path and the
    shard range: the receiving process re-opens the maps itself, which is
    what keeps worker dispatch zero-copy in
    :class:`~repro.queries.parallel.ShardedExecutor`.
    """

    #: The item list is fixed at load time and the maps are read-only:
    #: engine materializations may skip their per-item snapshot scan.
    immutable_items = True

    __slots__ = (
        "manifest_path",
        "mmap_mode",
        "kind",
        "mapped_values",
        "mapped_variances",
        "mapped_samples",
        "mapped_index",
        "mapped_warm",
        "_shard_range",
    )

    def __init__(
        self,
        items: Sequence,
        *,
        manifest_path: str,
        mmap_mode: Optional[str],
        kind: str,
        mapped_values: Optional[np.ndarray],
        mapped_variances: Optional[np.ndarray],
        mapped_samples: Optional[np.ndarray],
        shard_range: Tuple[int, int],
        name: Optional[str] = None,
        mapped_index: Optional[Dict] = None,
        mapped_warm: Optional[Dict] = None,
        _validated: bool = False,
    ) -> None:
        super().__init__(items, name=name, _validated=_validated)
        self.manifest_path = manifest_path
        self.mmap_mode = mmap_mode
        self.kind = kind
        self.mapped_values = mapped_values
        self.mapped_variances = mapped_variances
        self.mapped_samples = mapped_samples
        self.mapped_index = mapped_index
        self.mapped_warm = mapped_warm
        self._shard_range = shard_range

    @property
    def shard_range(self) -> Tuple[int, int]:
        """``(start, stop)`` rows of the saved collection this view holds."""
        return self._shard_range

    def values_matrix(self) -> np.ndarray:
        """The mapped ``(N, n)`` point-estimate matrix (no re-stacking)."""
        if self.mapped_values is not None:
            return self.mapped_values
        return super().values_matrix()

    def shard(self, start: int, stop: int) -> "MappedCollection":
        """A zero-copy row-range view ``[start, stop)`` of this collection.

        Items are shared (not rebuilt) and every mapped matrix is sliced,
        so a shard costs O(1) memory regardless of its width.
        """
        n_series = len(self)
        if not 0 <= start < stop <= n_series:
            raise InvalidParameterError(
                f"shard range [{start}, {stop}) invalid for "
                f"{n_series} series"
            )
        offset = self._shard_range[0]

        def _sliced(matrix: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if matrix is None else matrix[start:stop]

        index = None
        if self.mapped_index is not None:
            index = {
                key: (table if key == "segments" else table[start:stop])
                for key, table in self.mapped_index.items()
            }
        warm = None
        if self.mapped_warm is not None:
            # Magnitude scales are whole-collection maxima: they stay
            # valid (if slightly conservative) for any row subset.
            warm = {
                key: (entry if key.endswith("_scale") else entry[start:stop])
                for key, entry in self.mapped_warm.items()
            }

        return MappedCollection(
            self._items[start:stop],
            manifest_path=self.manifest_path,
            mmap_mode=self.mmap_mode,
            kind=self.kind,
            mapped_values=_sliced(self.mapped_values),
            mapped_variances=_sliced(self.mapped_variances),
            mapped_samples=_sliced(self.mapped_samples),
            shard_range=(offset + start, offset + stop),
            name=self.name,
            mapped_index=index,
            mapped_warm=warm,
            _validated=True,
        )

    def __reduce__(self):
        start, stop = self._shard_range
        return (
            _load_shard,
            (self.manifest_path, self.mmap_mode, start, stop),
        )

    def __repr__(self) -> str:
        start, stop = self._shard_range
        return (
            f"MappedCollection(kind={self.kind!r}, rows=[{start}, {stop}), "
            f"length={self.series_length}, "
            f"manifest={self.manifest_path!r})"
        )


def _resolve_manifest(path: str) -> str:
    """Accept either a directory or the manifest file itself."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise MappedCollectionError(f"no collection manifest at {path!r}")
    return path


def load_collection(
    path: str, mmap_mode: Optional[str] = "r"
) -> MappedCollection:
    """Open a saved collection; ``path`` is the directory or manifest file.

    ``mmap_mode="r"`` (the default) memory-maps every matrix read-only —
    series values are views and pages load on demand.  Pass
    ``mmap_mode=None`` to read the arrays eagerly into RAM (same API,
    no mapping).
    """
    manifest_path = _resolve_manifest(path)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise MappedCollectionError(
            f"{manifest_path!r} is not a {MANIFEST_FORMAT} manifest"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise MappedCollectionError(
            f"unsupported manifest version {manifest.get('version')!r} "
            f"(expected {MANIFEST_VERSION})"
        )

    directory = os.path.dirname(manifest_path)

    def _open_file(file_name: str) -> np.ndarray:
        array_path = os.path.join(directory, file_name)
        if not os.path.isfile(array_path):
            # A bare numpy FileNotFoundError would name only the .npy
            # file; the manifest is what the user registered, so the
            # error must point back at it.
            raise MappedCollectionError(
                f"collection payload {array_path!r} referenced by manifest "
                f"{manifest_path!r} is missing; the saved collection is "
                f"incomplete (payload or index tables deleted?) — re-save "
                f"it with save_collection()/build_index()"
            )
        array = np.load(array_path, mmap_mode=mmap_mode)
        if mmap_mode is None:
            # np.load returns a view over a writeable buffer; re-own it
            # so the whole base chain is read-only and series rows are
            # adopted as views instead of being defensively copied.
            if array.base is not None:
                array = array.copy()
            array.setflags(write=False)
        return array

    def _open(array_name: str) -> Optional[np.ndarray]:
        file_name = manifest["arrays"].get(array_name)
        if file_name is None:
            return None
        return _open_file(file_name)

    kind = manifest.get("kind")
    n_series = manifest["n_series"]
    length = manifest["length"]
    labels = manifest.get("labels") or [None] * n_series
    names = manifest.get("series_names") or [None] * n_series

    values = _open("values")
    variances = _open("variances")
    samples = _open("samples")

    items: List = []
    if kind == "multisample":
        if samples is None or samples.shape[:2] != (n_series, length):
            raise MappedCollectionError(
                f"samples matrix missing or mis-shaped in {manifest_path!r}"
            )
        for row in range(n_series):
            items.append(
                MultisampleUncertainTimeSeries(
                    samples[row], label=labels[row], name=names[row]
                )
            )
    elif kind in ("pdf", "exact"):
        if values is None or values.shape != (n_series, length):
            raise MappedCollectionError(
                f"values matrix missing or mis-shaped in {manifest_path!r}"
            )
        if kind == "pdf":
            table = [
                _distribution_from_spec(spec)
                for spec in manifest.get("distributions", [])
            ]
            models = manifest.get("error_models", [])
            if len(models) != n_series:
                raise MappedCollectionError(
                    f"expected {n_series} error models, got {len(models)}"
                )
            for row in range(n_series):
                items.append(
                    UncertainTimeSeries(
                        values[row],
                        _decode_error_model(models[row], table, length),
                        label=labels[row],
                        name=names[row],
                    )
                )
        else:
            for row in range(n_series):
                items.append(
                    TimeSeries(
                        values[row], label=labels[row], name=names[row]
                    )
                )
    else:
        raise MappedCollectionError(
            f"unknown collection kind {kind!r} in {manifest_path!r}"
        )

    mapped_index: Optional[Dict] = None
    index_spec = manifest.get("index")
    if index_spec:
        mapped_index = {"segments": int(index_spec["segments"])}
        for key, file_name in index_spec["arrays"].items():
            table = _open_file(file_name)
            if table.shape[0] != n_series:
                raise MappedCollectionError(
                    f"index table {file_name!r} has {table.shape[0]} rows "
                    f"for {n_series} series"
                )
            mapped_index[key] = table

    mapped_warm: Optional[Dict] = None
    warm_spec = manifest.get("warm")
    if warm_spec:
        mapped_warm = {}
        for key, file_name in warm_spec["arrays"].items():
            table = _open_file(file_name)
            if table.shape[0] != n_series:
                raise MappedCollectionError(
                    f"warm-cache table {file_name!r} has {table.shape[0]} "
                    f"rows for {n_series} series"
                )
            mapped_warm[key] = table
        for key, value in warm_spec.get("scales", {}).items():
            mapped_warm[key] = float(value)

    return MappedCollection(
        items,
        manifest_path=manifest_path,
        mmap_mode=mmap_mode,
        kind=kind,
        mapped_values=values,
        mapped_variances=variances,
        mapped_samples=samples,
        shard_range=(0, n_series),
        name=manifest.get("name"),
        mapped_index=mapped_index,
        mapped_warm=mapped_warm,
    )


def _load_shard(
    manifest_path: str, mmap_mode: Optional[str], start: int, stop: int
) -> MappedCollection:
    """Unpickle helper: re-open the maps, then slice to the shard range."""
    collection = load_collection(manifest_path, mmap_mode=mmap_mode)
    if (start, stop) == collection.shard_range:
        return collection
    return collection.shard(start, stop)


# ---------------------------------------------------------------------------
# Streaming writes and index construction
# ---------------------------------------------------------------------------


class StreamingCollectionWriter:
    """Write an exact-kind collection chunk by chunk, straight to the map.

    ``save_collection`` stacks every series in RAM before writing — fine
    for the paper-scale datasets, impossible for the 10⁶-series
    scalability collections.  The streaming writer pre-allocates
    ``values.npy`` as a writeable memory map and lets a generator
    :meth:`append` row chunks into it; no more than one chunk is ever
    resident.  :meth:`finalize` (or a clean ``with`` exit) validates the
    row count and writes the manifest — until then the directory holds
    no manifest and cannot be opened by :func:`load_collection`.

    Only the ``exact`` kind streams: pdf/multisample collections carry
    per-series error metadata that the paper-scale experiments build in
    memory anyway (:func:`save_collection`).
    """

    def __init__(
        self,
        directory: str,
        n_series: int,
        length: int,
        name: Optional[str] = None,
    ) -> None:
        if n_series < 1:
            raise InvalidParameterError(
                f"n_series must be >= 1, got {n_series}"
            )
        if length < 1:
            raise InvalidParameterError(f"length must be >= 1, got {length}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.n_series = int(n_series)
        self.length = int(length)
        self.name = name
        self._values: Optional[np.ndarray] = np.lib.format.open_memmap(
            os.path.join(directory, "values.npy"),
            mode="w+",
            dtype=np.float64,
            shape=(self.n_series, self.length),
        )
        self._row = 0
        self.manifest_path: Optional[str] = None

    @property
    def rows_written(self) -> int:
        """Rows appended so far."""
        return self._row

    def append(self, chunk: np.ndarray) -> None:
        """Write the next ``(rows, length)`` value chunk into the map."""
        if self._values is None:
            raise InvalidParameterError(
                "writer is finalized; no further chunks accepted"
            )
        chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
        if chunk.ndim != 2 or chunk.shape[1] != self.length:
            raise InvalidParameterError(
                f"chunk must be (rows, {self.length}), got shape "
                f"{chunk.shape}"
            )
        if not np.all(np.isfinite(chunk)):
            raise InvalidSeriesError("chunk values must be finite")
        stop = self._row + chunk.shape[0]
        if stop > self.n_series:
            raise InvalidParameterError(
                f"chunk overflows the declared {self.n_series} series "
                f"(rows {self._row}:{stop})"
            )
        self._values[self._row:stop] = chunk
        self._row = stop

    def finalize(self) -> str:
        """Flush the map, write the manifest; returns the manifest path."""
        if self._values is None:
            return self.manifest_path
        if self._row != self.n_series:
            raise InvalidParameterError(
                f"wrote {self._row} of the declared {self.n_series} series"
            )
        self._values.flush()
        self._values = None
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "kind": "exact",
            "n_series": self.n_series,
            "length": self.length,
            "name": self.name,
            "labels": None,
            "series_names": None,
            "arrays": {"values": "values.npy"},
        }
        self.manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return self.manifest_path

    def __enter__(self) -> "StreamingCollectionWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self._values = None  # drop the map; leave no manifest behind


def build_index(
    path: str,
    n_segments: Optional[int] = None,
    chunk_rows: int = 65536,
) -> str:
    """Build the PAA summarization-index tables of a saved collection.

    Streams the mapped matrices chunk by chunk (never more than
    ``chunk_rows`` rows resident), writes the per-kind index tables next
    to the manifest, and records them under the manifest's ``"index"``
    key so :func:`load_collection` re-opens them zero-copy:

    * exact / pdf — ``index_means.npy`` (``(N, S)`` segment means of the
      point estimates) + ``index_residuals.npy`` (``(N,)`` PAA
      reconstruction residual norms): the Euclidean-family geometry;
    * multisample — ``index_low_means.npy`` / ``index_high_means.npy``
      (``(N, S)`` segment means of the per-timestamp sample min/max
      envelopes): MUNICH's interval geometry.

    Returns the manifest path.  Rebuilding with a different segment
    count overwrites the previous tables.
    """
    from .summaries import (
        DEFAULT_SEGMENTS,
        effective_segments,
        residual_norms,
        segment_means,
        segment_widths,
    )

    if chunk_rows < 1:
        raise InvalidParameterError(
            f"chunk_rows must be >= 1, got {chunk_rows}"
        )
    if n_segments is None:
        n_segments = DEFAULT_SEGMENTS
    manifest_path = _resolve_manifest(path)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise MappedCollectionError(
            f"{manifest_path!r} is not a {MANIFEST_FORMAT} manifest"
        )
    directory = os.path.dirname(manifest_path)
    kind = manifest.get("kind")
    n_series = manifest["n_series"]
    length = manifest["length"]
    n_segments = effective_segments(n_segments, length)

    def _table(file_name: str, shape: Tuple[int, ...]) -> np.ndarray:
        return np.lib.format.open_memmap(
            os.path.join(directory, file_name),
            mode="w+",
            dtype=np.float64,
            shape=shape,
        )

    arrays: Dict[str, str] = {}
    if kind == "multisample":
        samples = np.load(
            os.path.join(directory, manifest["arrays"]["samples"]),
            mmap_mode="r",
        )
        low_means = _table("index_low_means.npy", (n_series, n_segments))
        high_means = _table("index_high_means.npy", (n_series, n_segments))
        for start in range(0, n_series, chunk_rows):
            stop = min(start + chunk_rows, n_series)
            block = np.asarray(samples[start:stop])
            low_means[start:stop] = segment_means(
                block.min(axis=2), n_segments
            )
            high_means[start:stop] = segment_means(
                block.max(axis=2), n_segments
            )
        low_means.flush()
        high_means.flush()
        arrays = {
            "low_means": "index_low_means.npy",
            "high_means": "index_high_means.npy",
        }
    elif kind in ("exact", "pdf"):
        values = np.load(
            os.path.join(directory, manifest["arrays"]["values"]),
            mmap_mode="r",
        )
        means = _table("index_means.npy", (n_series, n_segments))
        residuals = _table("index_residuals.npy", (n_series,))
        norms = _table("index_norms.npy", (n_series,))
        widths = segment_widths(length, n_segments)
        for start in range(0, n_series, chunk_rows):
            stop = min(start + chunk_rows, n_series)
            block = np.asarray(values[start:stop])
            chunk_means = segment_means(block, n_segments)
            means[start:stop] = chunk_means
            residuals[start:stop] = residual_norms(
                block, n_segments, means=chunk_means
            )
            norms[start:stop] = np.einsum(
                "js,s,js->j", chunk_means, widths, chunk_means
            )
        means.flush()
        residuals.flush()
        norms.flush()
        arrays = {
            "means": "index_means.npy",
            "residuals": "index_residuals.npy",
            "norms": "index_norms.npy",
        }
    else:
        raise MappedCollectionError(
            f"unknown collection kind {kind!r} in {manifest_path!r}"
        )

    manifest["index"] = {"segments": int(n_segments), "arrays": arrays}
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return manifest_path


def build_warm_cache(path: str, chunk_rows: int = 65536) -> str:
    """Persist the float32 materialization tier next to a saved collection.

    Streams the mapped matrices chunk by chunk and writes the warm
    tables the query engine's precision tier would otherwise downcast on
    first use, recording them under the manifest's ``"warm"`` key so
    :func:`load_collection` re-opens them zero-copy and a restarted
    daemon serves cold queries without the 1-NN priming probe:

    * exact / pdf — ``warm_values32.npy`` (``(N, n)`` float32 point
      estimates);
    * multisample — ``warm_bounds_low32.npy`` / ``warm_bounds_high32.npy``
      (``(N, n)`` float32 per-timestamp sample min/max — the bound
      stages' interval tier).

    Each tier's float64 magnitude scale (what keeps the widened float32
    bounds admissible) is measured during the same pass and stored in
    the manifest.  Returns the manifest path.
    """
    if chunk_rows < 1:
        raise InvalidParameterError(
            f"chunk_rows must be >= 1, got {chunk_rows}"
        )
    manifest_path = _resolve_manifest(path)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise MappedCollectionError(
            f"{manifest_path!r} is not a {MANIFEST_FORMAT} manifest"
        )
    directory = os.path.dirname(manifest_path)
    kind = manifest.get("kind")
    n_series = manifest["n_series"]
    length = manifest["length"]

    def _table(file_name: str, shape: Tuple[int, ...]) -> np.ndarray:
        return np.lib.format.open_memmap(
            os.path.join(directory, file_name),
            mode="w+",
            dtype=np.float32,
            shape=shape,
        )

    arrays: Dict[str, str] = {}
    scales: Dict[str, float] = {}
    if kind == "multisample":
        samples = np.load(
            os.path.join(directory, manifest["arrays"]["samples"]),
            mmap_mode="r",
        )
        low32 = _table("warm_bounds_low32.npy", (n_series, length))
        high32 = _table("warm_bounds_high32.npy", (n_series, length))
        scale = 0.0
        for start in range(0, n_series, chunk_rows):
            stop = min(start + chunk_rows, n_series)
            block = np.asarray(samples[start:stop])
            low = block.min(axis=2)
            high = block.max(axis=2)
            if low.size:
                scale = max(
                    scale,
                    float(np.abs(low).max()),
                    float(np.abs(high).max()),
                )
            low32[start:stop] = low
            high32[start:stop] = high
        low32.flush()
        high32.flush()
        arrays = {
            "bounds_low32": "warm_bounds_low32.npy",
            "bounds_high32": "warm_bounds_high32.npy",
        }
        scales = {"bounds_scale": scale}
    elif kind in ("exact", "pdf"):
        values = np.load(
            os.path.join(directory, manifest["arrays"]["values"]),
            mmap_mode="r",
        )
        values32 = _table("warm_values32.npy", (n_series, length))
        scale = 0.0
        for start in range(0, n_series, chunk_rows):
            stop = min(start + chunk_rows, n_series)
            block = np.asarray(values[start:stop])
            if block.size:
                scale = max(scale, float(np.abs(block).max()))
            values32[start:stop] = block
        values32.flush()
        arrays = {"values32": "warm_values32.npy"}
        scales = {"values_scale": scale}
    else:
        raise MappedCollectionError(
            f"unknown collection kind {kind!r} in {manifest_path!r}"
        )

    manifest["warm"] = {"arrays": arrays, "scales": scales}
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return manifest_path
