"""Memory-mapped collection storage: out-of-core similarity workloads.

The parallel scale-up (see :mod:`repro.queries.parallel`) shards an
``(M, N)`` workload across worker processes.  Shipping a collection to a
worker by pickling every series object copies the whole dataset once per
worker; for collections larger than RAM it is not possible at all.  This
module stores a collection as flat ``.npy`` matrices plus a small JSON
manifest, so any process — a pool worker, a later session, a different
machine sharing a filesystem — re-opens the values **zero-copy** through
``numpy``'s memory mapping and lets the OS page data in on demand.

On-disk layout (``save_collection(collection, directory)``)::

    directory/
        collection.json     # the manifest (see below)
        values.npy          # (N, n) float64 point estimates
        variances.npy       # (N, n) float64 error variances (pdf kind)
        samples.npy         # (N, n, s) float64 draws (multisample kind)

Manifest format (``collection.json``, version 1)::

    {
      "format": "repro-collection",
      "version": 1,
      "kind": "exact" | "pdf" | "multisample",
      "n_series": N, "length": n, "samples_per_timestamp": s,   # s: ms only
      "name": "...", "labels": [...], "series_names": [...],
      "arrays": {"values": "values.npy", ...},                  # per kind
      "distributions": [ {"family": "normal", "std": 0.4},      # pdf only:
                         {"family": "mixture",                  # dedup table
                          "weights": [...], "components": [...]} ],
      "error_models": [ {"code": 0} |                           # homogeneous
                        {"codes": [0, 1, ...]} ]                # per series
    }

:func:`load_collection` rebuilds a :class:`MappedCollection` whose series
objects hold **row views** of the mapped matrices (no copies; the arrays
are opened read-only) and whose materialization hooks
(:attr:`MappedCollection.mapped_values` and friends) let the query
engine's :class:`~repro.queries.engine.CollectionMaterialization` warm its
dense matrices straight from the map instead of re-stacking rows.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions import FAMILIES, make_distribution
from ..distributions.base import ErrorDistribution
from ..distributions.mixture import MixtureError
from .collection import Collection
from .errors import InvalidParameterError, InvalidSeriesError
from .series import TimeSeries
from .uncertain import (
    ErrorModel,
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)

#: File name of the JSON manifest inside a saved-collection directory.
MANIFEST_NAME = "collection.json"
#: Manifest schema marker / version (bump on incompatible changes).
MANIFEST_FORMAT = "repro-collection"
MANIFEST_VERSION = 1


class MappedCollectionError(InvalidSeriesError):
    """A saved collection directory or manifest is malformed."""


# ---------------------------------------------------------------------------
# Error-distribution (de)serialization
# ---------------------------------------------------------------------------


def _distribution_spec(distribution: ErrorDistribution) -> Dict:
    """JSON-serializable spec of one error distribution."""
    if isinstance(distribution, MixtureError):
        return {
            "family": "mixture",
            "weights": [float(w) for w in distribution.weights],
            "components": [
                _distribution_spec(c) for c in distribution.components
            ],
        }
    if distribution.family in FAMILIES:
        return {"family": distribution.family, "std": float(distribution.std)}
    raise MappedCollectionError(
        f"cannot serialize error distribution family "
        f"{distribution.family!r}; known families: "
        f"{sorted(FAMILIES)} + mixture"
    )


def _distribution_from_spec(spec: Dict) -> ErrorDistribution:
    """Rebuild an error distribution from its manifest spec."""
    family = spec.get("family")
    if family == "mixture":
        components = [
            _distribution_from_spec(c) for c in spec["components"]
        ]
        return MixtureError(components, spec["weights"])
    if family in FAMILIES:
        return make_distribution(family, spec["std"])
    raise MappedCollectionError(
        f"unknown error distribution family {family!r} in manifest"
    )


def _encode_error_models(
    items: Sequence[UncertainTimeSeries],
) -> Tuple[List[Dict], List[Dict]]:
    """Dedup every distinct distribution into a table + per-series codes."""
    table: Dict[ErrorDistribution, int] = {}
    models: List[Dict] = []
    for item in items:
        model = item.error_model
        if model.is_homogeneous:
            code = table.setdefault(model[0], len(table))
            models.append({"code": code})
        else:
            models.append({
                "codes": [
                    table.setdefault(d, len(table)) for d in model
                ]
            })
    specs = [_distribution_spec(d) for d in table]
    return specs, models


def _decode_error_model(
    entry: Dict, table: Sequence[ErrorDistribution], length: int
) -> ErrorModel:
    """Rebuild one series' error model from its manifest entry."""
    if "code" in entry:
        return ErrorModel.constant(table[entry["code"]], length)
    codes = entry["codes"]
    if len(codes) != length:
        raise MappedCollectionError(
            f"error-model codes length {len(codes)} != series length {length}"
        )
    return ErrorModel([table[code] for code in codes])


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------


def _collection_kind(items: Sequence) -> str:
    """The uniform series kind of a collection, or raise."""
    kinds = set()
    for item in items:
        if isinstance(item, UncertainTimeSeries):
            kinds.add("pdf")
        elif isinstance(item, MultisampleUncertainTimeSeries):
            kinds.add("multisample")
        elif isinstance(item, TimeSeries):
            kinds.add("exact")
        else:
            raise MappedCollectionError(
                f"cannot save series of type {type(item).__name__}"
            )
    if len(kinds) != 1:
        raise MappedCollectionError(
            f"a saved collection must hold one series kind, got "
            f"{sorted(kinds)}"
        )
    return kinds.pop()


def save_collection(collection: Sequence, directory: str) -> str:
    """Save ``collection`` under ``directory``; returns the manifest path.

    The collection must be non-empty and hold one series kind (exact /
    pdf / multisample).  Existing files in ``directory`` are overwritten.
    """
    items = list(collection)
    if not items:
        raise InvalidParameterError("cannot save an empty collection")
    kind = _collection_kind(items)
    os.makedirs(directory, exist_ok=True)

    manifest: Dict = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "kind": kind,
        "n_series": len(items),
        "length": len(items[0]),
        "name": getattr(collection, "name", None),
        "labels": [getattr(item, "label", None) for item in items],
        "series_names": [getattr(item, "name", None) for item in items],
        "arrays": {},
    }

    def _write(array_name: str, matrix: np.ndarray) -> None:
        file_name = f"{array_name}.npy"
        np.save(
            os.path.join(directory, file_name),
            np.ascontiguousarray(matrix, dtype=np.float64),
        )
        manifest["arrays"][array_name] = file_name

    if kind == "multisample":
        _write("samples", np.stack([item.samples for item in items]))
        manifest["samples_per_timestamp"] = items[0].samples_per_timestamp
    else:
        _write("values", np.vstack([item.values for item in items]))
    if kind == "pdf":
        _write(
            "variances",
            np.vstack([item.error_model.variances() for item in items]),
        )
        specs, models = _encode_error_models(items)
        manifest["distributions"] = specs
        manifest["error_models"] = models

    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return manifest_path


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


class MappedCollection(Collection):
    """A collection whose dense matrices are memory-mapped from disk.

    Behaves exactly like :class:`~repro.core.collection.Collection` — the
    items are real series objects — but every series holds a **view** into
    the mapped value/variance/sample matrices, and the ``mapped_*``
    attributes let :class:`~repro.queries.engine.CollectionMaterialization`
    adopt the maps directly (zero copies, OS-paged).

    Pickling a mapped collection transfers only the manifest path and the
    shard range: the receiving process re-opens the maps itself, which is
    what keeps worker dispatch zero-copy in
    :class:`~repro.queries.parallel.ShardedExecutor`.
    """

    __slots__ = (
        "manifest_path",
        "mmap_mode",
        "kind",
        "mapped_values",
        "mapped_variances",
        "mapped_samples",
        "_shard_range",
    )

    def __init__(
        self,
        items: Sequence,
        *,
        manifest_path: str,
        mmap_mode: Optional[str],
        kind: str,
        mapped_values: Optional[np.ndarray],
        mapped_variances: Optional[np.ndarray],
        mapped_samples: Optional[np.ndarray],
        shard_range: Tuple[int, int],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(items, name=name)
        self.manifest_path = manifest_path
        self.mmap_mode = mmap_mode
        self.kind = kind
        self.mapped_values = mapped_values
        self.mapped_variances = mapped_variances
        self.mapped_samples = mapped_samples
        self._shard_range = shard_range

    @property
    def shard_range(self) -> Tuple[int, int]:
        """``(start, stop)`` rows of the saved collection this view holds."""
        return self._shard_range

    def values_matrix(self) -> np.ndarray:
        """The mapped ``(N, n)`` point-estimate matrix (no re-stacking)."""
        if self.mapped_values is not None:
            return self.mapped_values
        return super().values_matrix()

    def shard(self, start: int, stop: int) -> "MappedCollection":
        """A zero-copy row-range view ``[start, stop)`` of this collection.

        Items are shared (not rebuilt) and every mapped matrix is sliced,
        so a shard costs O(1) memory regardless of its width.
        """
        n_series = len(self)
        if not 0 <= start < stop <= n_series:
            raise InvalidParameterError(
                f"shard range [{start}, {stop}) invalid for "
                f"{n_series} series"
            )
        offset = self._shard_range[0]

        def _sliced(matrix: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if matrix is None else matrix[start:stop]

        return MappedCollection(
            self._items[start:stop],
            manifest_path=self.manifest_path,
            mmap_mode=self.mmap_mode,
            kind=self.kind,
            mapped_values=_sliced(self.mapped_values),
            mapped_variances=_sliced(self.mapped_variances),
            mapped_samples=_sliced(self.mapped_samples),
            shard_range=(offset + start, offset + stop),
            name=self.name,
        )

    def __reduce__(self):
        start, stop = self._shard_range
        return (
            _load_shard,
            (self.manifest_path, self.mmap_mode, start, stop),
        )

    def __repr__(self) -> str:
        start, stop = self._shard_range
        return (
            f"MappedCollection(kind={self.kind!r}, rows=[{start}, {stop}), "
            f"length={self.series_length}, "
            f"manifest={self.manifest_path!r})"
        )


def _resolve_manifest(path: str) -> str:
    """Accept either a directory or the manifest file itself."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise MappedCollectionError(f"no collection manifest at {path!r}")
    return path


def load_collection(
    path: str, mmap_mode: Optional[str] = "r"
) -> MappedCollection:
    """Open a saved collection; ``path`` is the directory or manifest file.

    ``mmap_mode="r"`` (the default) memory-maps every matrix read-only —
    series values are views and pages load on demand.  Pass
    ``mmap_mode=None`` to read the arrays eagerly into RAM (same API,
    no mapping).
    """
    manifest_path = _resolve_manifest(path)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise MappedCollectionError(
            f"{manifest_path!r} is not a {MANIFEST_FORMAT} manifest"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise MappedCollectionError(
            f"unsupported manifest version {manifest.get('version')!r} "
            f"(expected {MANIFEST_VERSION})"
        )

    directory = os.path.dirname(manifest_path)

    def _open(array_name: str) -> Optional[np.ndarray]:
        file_name = manifest["arrays"].get(array_name)
        if file_name is None:
            return None
        array = np.load(
            os.path.join(directory, file_name), mmap_mode=mmap_mode
        )
        if mmap_mode is None:
            # np.load returns a view over a writeable buffer; re-own it
            # so the whole base chain is read-only and series rows are
            # adopted as views instead of being defensively copied.
            if array.base is not None:
                array = array.copy()
            array.setflags(write=False)
        return array

    kind = manifest.get("kind")
    n_series = manifest["n_series"]
    length = manifest["length"]
    labels = manifest.get("labels") or [None] * n_series
    names = manifest.get("series_names") or [None] * n_series

    values = _open("values")
    variances = _open("variances")
    samples = _open("samples")

    items: List = []
    if kind == "multisample":
        if samples is None or samples.shape[:2] != (n_series, length):
            raise MappedCollectionError(
                f"samples matrix missing or mis-shaped in {manifest_path!r}"
            )
        for row in range(n_series):
            items.append(
                MultisampleUncertainTimeSeries(
                    samples[row], label=labels[row], name=names[row]
                )
            )
    elif kind in ("pdf", "exact"):
        if values is None or values.shape != (n_series, length):
            raise MappedCollectionError(
                f"values matrix missing or mis-shaped in {manifest_path!r}"
            )
        if kind == "pdf":
            table = [
                _distribution_from_spec(spec)
                for spec in manifest.get("distributions", [])
            ]
            models = manifest.get("error_models", [])
            if len(models) != n_series:
                raise MappedCollectionError(
                    f"expected {n_series} error models, got {len(models)}"
                )
            for row in range(n_series):
                items.append(
                    UncertainTimeSeries(
                        values[row],
                        _decode_error_model(models[row], table, length),
                        label=labels[row],
                        name=names[row],
                    )
                )
        else:
            for row in range(n_series):
                items.append(
                    TimeSeries(
                        values[row], label=labels[row], name=names[row]
                    )
                )
    else:
        raise MappedCollectionError(
            f"unknown collection kind {kind!r} in {manifest_path!r}"
        )

    return MappedCollection(
        items,
        manifest_path=manifest_path,
        mmap_mode=mmap_mode,
        kind=kind,
        mapped_values=values,
        mapped_variances=variances,
        mapped_samples=samples,
        shard_range=(0, n_series),
        name=manifest.get("name"),
    )


def _load_shard(
    manifest_path: str, mmap_mode: Optional[str], start: int, stop: int
) -> MappedCollection:
    """Unpickle helper: re-open the maps, then slice to the shard range."""
    collection = load_collection(manifest_path, mmap_mode=mmap_mode)
    if (start, stop) == collection.shard_range:
        return collection
    return collection.shard(start, stop)
