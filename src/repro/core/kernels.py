"""Pluggable kernel backends: ``numpy`` always, ``numba`` when installed.

The hot per-cell kernels — the banded DTW wavefront and the MUNICH
residual-sum convolution — run behind one seam: a frozen
:class:`KernelBackend` record naming the backend and carrying optional
compiled replacements for each kernel (``None`` means "use the NumPy
reference path").  The registry always contains ``"numpy"``; ``"numba"``
is detected lazily the first time it is asked for, compiling ``@njit``
twins of the two kernels and falling back to NumPy cleanly when the
package is absent or compilation fails — a NumPy-only environment never
sees an import error, a warning, or a behaviour change.

Dispatch is *policy-driven*: the cost-based planner resolves
``PlanPolicy.backend`` (``None`` = auto: the best available backend) and
activates it around plan execution with :func:`use_backend`; the kernel
call sites consult :func:`active_backend` at run time.  The activation
is a thread-local stack, so concurrent sessions with different policies
never race each other's choice, and code outside any plan (tests, ad-hoc
kernel calls) runs whatever :func:`set_default_backend` selected —
``"numpy"`` unless overridden.

Compiled kernels replicate the NumPy reference operation for operation
(same recurrences, same drop rules), so verdicts and kNN sets are
identical and distances agree to accumulated rounding, far inside the
repo's 1e-9 parity floors — the kernel-parity CI leg runs the same test
suite with and without numba installed to prove it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from .errors import InvalidParameterError

#: Backend names a :class:`~repro.queries.planner.PlanPolicy` may request
#: (``None`` means auto-select the best available backend).
BACKEND_NAMES = ("numpy", "numba")


@dataclass(frozen=True)
class KernelBackend:
    """One backend's compiled kernels (``None`` → NumPy reference path).

    ``dtw_wavefront(costs, starts, stops) -> totals`` consumes the
    stacked ``(B, n, m)`` point-cost tensor and the per-row band limits
    of :func:`repro.distances.dtw._band_limits`, returning the ``(B,)``
    *accumulated* costs (pre-``sqrt``).  ``munich_convolution(residuals,
    cutoffs, n_atoms) -> probabilities`` mirrors the contract of
    :func:`repro.munich.batch._dp_chunk`.
    """

    name: str
    dtw_wavefront: Optional[Callable] = None
    munich_convolution: Optional[Callable] = None

    @property
    def jit(self) -> bool:
        """Whether any compiled kernel is attached."""
        return (
            self.dtw_wavefront is not None
            or self.munich_convolution is not None
        )

    def __repr__(self) -> str:
        kind = "jit" if self.jit else "reference"
        return f"KernelBackend({self.name!r}, {kind})"


_NUMPY_BACKEND = KernelBackend(name="numpy")

_REGISTRY: Dict[str, KernelBackend] = {"numpy": _NUMPY_BACKEND}
_REGISTRY_LOCK = threading.Lock()
#: Lazy numba probe result: unset / backend / None (unavailable).
_NUMBA_PROBED = False
_NUMBA_BACKEND: Optional[KernelBackend] = None

_DEFAULT_NAME: Optional[str] = None  # None = auto (best available)
_ACTIVE = threading.local()


def _build_numba_backend() -> Optional[KernelBackend]:
    """Compile the JIT kernels, or ``None`` when numba is unusable."""
    try:
        import numba
        import numpy as np
    except ImportError:
        return None
    try:
        @numba.njit(parallel=True, cache=False)
        def dtw_wavefront(costs, starts, stops):  # pragma: no cover
            n_pairs, n, m = costs.shape
            totals = np.empty(n_pairs)
            for pair in numba.prange(n_pairs):
                previous = np.full(m + 1, np.inf)
                current = np.full(m + 1, np.inf)
                previous[0] = 0.0
                for i in range(1, n + 1):
                    for j in range(m + 1):
                        current[j] = np.inf
                    for j in range(starts[i - 1] + 1, stops[i - 1] + 1):
                        best = previous[j - 1]
                        if previous[j] < best:
                            best = previous[j]
                        if current[j - 1] < best:
                            best = current[j - 1]
                        current[j] = costs[pair, i - 1, j - 1] + best
                    previous, current = current, previous
                totals[pair] = previous[m]
            return totals

        @numba.njit(parallel=True, cache=False)
        def munich_convolution(
            residuals, cutoffs, n_atoms
        ):  # pragma: no cover
            n_rows, length, n_ranks = residuals.shape
            out = np.empty(n_rows)
            weight = 1.0 / n_atoms
            for row in numba.prange(n_rows):
                cutoff = cutoffs[row]
                if cutoff < 0:
                    out[row] = 0.0
                    continue
                total_span = 0
                for t in range(length):
                    span = 0
                    for k in range(n_ranks):
                        if residuals[row, t, k] > span:
                            span = residuals[row, t, k]
                    total_span += span
                width = cutoff + 1
                if total_span + 1 < width:
                    width = total_span + 1
                pmf = np.zeros(width)
                buffer = np.zeros(width)
                pmf[0] = 1.0
                occupied = 1
                for t in range(length):
                    span = 0
                    for k in range(n_ranks):
                        if residuals[row, t, k] > span:
                            span = residuals[row, t, k]
                    if span == 0:
                        continue
                    grown = occupied + span
                    if grown > width:
                        grown = width
                    for i in range(grown):
                        buffer[i] = 0.0
                    for k in range(n_ranks):
                        offset = residuals[row, t, k]
                        limit = grown - offset
                        if limit > occupied:
                            limit = occupied
                        for i in range(limit):
                            buffer[offset + i] += pmf[i]
                    for i in range(grown):
                        pmf[i] = buffer[i] * weight
                    occupied = grown
                stop = cutoff
                if stop > occupied - 1:
                    stop = occupied - 1
                acc = 0.0
                for i in range(stop + 1):
                    acc += pmf[i]
                out[row] = acc
            return out

        # Force compilation now so a broken toolchain falls back here,
        # not in the middle of a query plan.
        probe_costs = np.ones((1, 2, 2))
        probe_limits = np.array([0, 0]), np.array([2, 2])
        dtw_wavefront(probe_costs, *probe_limits)
        munich_convolution(
            np.zeros((1, 1, 1), dtype=np.intp),
            np.zeros(1, dtype=np.intp),
            1,
        )
    except Exception:
        return None
    return KernelBackend(
        name="numba",
        dtw_wavefront=dtw_wavefront,
        munich_convolution=munich_convolution,
    )


def _numba_backend() -> Optional[KernelBackend]:
    """The cached numba backend, probing (and compiling) on first use."""
    global _NUMBA_PROBED, _NUMBA_BACKEND
    if not _NUMBA_PROBED:
        with _REGISTRY_LOCK:
            if not _NUMBA_PROBED:
                _NUMBA_BACKEND = _build_numba_backend()
                if _NUMBA_BACKEND is not None:
                    _REGISTRY["numba"] = _NUMBA_BACKEND
                _NUMBA_PROBED = True
    return _NUMBA_BACKEND


def register_backend(backend: KernelBackend) -> None:
    """Install (or replace) a backend under its name (extension hook)."""
    if not isinstance(backend, KernelBackend):
        raise InvalidParameterError(
            f"expected a KernelBackend, got {type(backend).__name__}"
        )
    with _REGISTRY_LOCK:
        _REGISTRY[backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Backend names usable right now (``numba`` only when importable)."""
    _numba_backend()
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend name to a usable backend.

    ``None`` auto-selects: the process default
    (:func:`set_default_backend`) when one is pinned, else the best
    available backend (``numba`` when importable, ``numpy`` otherwise).
    Asking for ``"numba"`` on a machine without it falls back to
    ``"numpy"`` — requesting the optional backend is always safe.
    Unknown names raise.
    """
    if name is None:
        name = _DEFAULT_NAME
    if name is None:
        jit = _numba_backend()
        return jit if jit is not None else _NUMPY_BACKEND
    if name == "numba":
        jit = _numba_backend()
        return jit if jit is not None else _NUMPY_BACKEND
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        raise InvalidParameterError(
            f"unknown kernel backend {name!r}; known: "
            f"{', '.join(available_backends())}"
        )
    return backend


def set_default_backend(name: Optional[str]) -> None:
    """Pin the process-wide backend (``None`` restores auto-selection)."""
    global _DEFAULT_NAME
    if name is not None:
        get_backend(name)  # validate (with fallback semantics for numba)
    _DEFAULT_NAME = name


def active_backend() -> KernelBackend:
    """The backend kernel call sites should dispatch to *right now*.

    The innermost :func:`use_backend` activation on this thread, else
    whatever :func:`get_backend` resolves for the process default.
    """
    stack = getattr(_ACTIVE, "stack", None)
    if stack:
        return stack[-1]
    return get_backend(None)


@contextmanager
def use_backend(name: Optional[str]):
    """Activate a backend for the current thread (planner dispatch).

    ``None`` activates the auto-selected backend.  Yields the resolved
    :class:`KernelBackend`, so callers can record which backend actually
    ran (``PruningStats.backend``).
    """
    backend = get_backend(name)
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


def validate_backend_name(name: Any) -> Optional[str]:
    """Policy-field validation: ``None`` or a known backend *name*.

    Accepts ``"numba"`` even when the package is absent (resolution
    falls back cleanly); rejects names no backend could ever answer to.
    """
    if name is None:
        return None
    if not isinstance(name, str) or name not in BACKEND_NAMES:
        known = ", ".join(BACKEND_NAMES)
        raise InvalidParameterError(
            f"backend must be None or one of {known}; got {name!r}"
        )
    return name
