"""PAA summarization of series collections, with admissible bounds.

Piecewise Aggregate Approximation (PAA) compresses a length-``n`` series
into ``S`` per-segment means.  Because averaging each segment is an
*orthogonal projection* onto the space of piecewise-constant functions,
the projection is a contraction in L2 and the classic iSAX-family lower
bound holds with no extra terms::

    ||q - c||_2  >=  sqrt( sum_s  w_s * (mean_s(q) - mean_s(c))^2 )

where ``w_s`` is the number of points in segment ``s``.  The same
segment-mean geometry yields an admissible bound for *uncertain* series:
summarizing the per-point bounding interval ``[low, high]`` gives a
per-segment interval whose gap to the query's interval lower-bounds the
Euclidean distance of **every** materialization pair (and, applied to
Keogh envelopes, lower-bounds the banded DTW — see
:func:`interval_lower_bound`).

An upper bound comes from the triangle inequality through the PAA
reconstructions ``q_hat`` / ``c_hat``::

    ||q - c||  <=  ||q_hat - c_hat|| + ||q - q_hat|| + ||c - c_hat||

so storing one *residual norm* per series alongside its segment means is
enough to bracket every pairwise distance from the summary table alone.
The summaries here back :class:`~repro.queries.index.IndexStage` — the
planner's first stage — and are persisted next to the mmap manifest by
:func:`~repro.core.mmapio.build_index`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import InvalidParameterError
from ..distances.lp import GEMM_REFINE_THRESHOLD

#: Default number of PAA segments techniques index with.  Eight segments
#: keep the summary table ``n/8``-fold smaller than the raw values while
#: leaving the lower bound tight enough to prune most candidates on
#: smooth series; techniques may override per instance.
DEFAULT_SEGMENTS = 8


def effective_segments(n_segments: int, length: int) -> int:
    """Clamp a requested segment count to the series length."""
    if n_segments < 1:
        raise InvalidParameterError(
            f"n_segments must be >= 1, got {n_segments}"
        )
    if length < 1:
        raise InvalidParameterError(f"length must be >= 1, got {length}")
    return min(n_segments, length)


def segment_edges(length: int, n_segments: int) -> np.ndarray:
    """Segment boundary offsets, shape ``(S + 1,)``.

    Follows :func:`numpy.array_split` geometry: when ``length`` is not a
    multiple of ``S`` the first ``length % S`` segments are one point
    longer, so every point belongs to exactly one segment.
    """
    n_segments = effective_segments(n_segments, length)
    base, extra = divmod(length, n_segments)
    lengths = np.full(n_segments, base, dtype=np.intp)
    lengths[:extra] += 1
    edges = np.zeros(n_segments + 1, dtype=np.intp)
    np.cumsum(lengths, out=edges[1:])
    return edges


def segment_widths(length: int, n_segments: int) -> np.ndarray:
    """Points per segment as float64, shape ``(S,)``."""
    edges = segment_edges(length, n_segments)
    return np.diff(edges).astype(np.float64)


def segment_means(matrix: np.ndarray, n_segments: int) -> np.ndarray:
    """Row-wise PAA: per-segment means of an ``(N, n)`` stack, ``(N, S)``."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    edges = segment_edges(matrix.shape[1], n_segments)
    sums = np.add.reduceat(matrix, edges[:-1], axis=1)
    return sums / np.diff(edges).astype(np.float64)


def reconstruct(means: np.ndarray, length: int) -> np.ndarray:
    """Expand ``(N, S)`` segment means back to ``(N, length)`` steps."""
    means = np.atleast_2d(np.asarray(means, dtype=np.float64))
    edges = segment_edges(length, means.shape[1])
    return np.repeat(means, np.diff(edges), axis=1)


def residual_norms(
    matrix: np.ndarray, n_segments: int, means: np.ndarray = None
) -> np.ndarray:
    """Per-row L2 norm of the PAA reconstruction error, shape ``(N,)``.

    Computed from the explicit reconstruction difference rather than the
    ``sum(x^2) - sum(w * mean^2)`` identity: the subtractive form loses
    precision exactly when residuals are small, and an *under*-estimated
    residual would break the upper bound's admissibility.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    if means is None:
        means = segment_means(matrix, n_segments)
    expanded = reconstruct(means, matrix.shape[1])
    return np.linalg.norm(matrix - expanded, axis=1)


@dataclass(frozen=True)
class PointSummary:
    """PAA summary of an exact (point-estimate) series stack.

    ``means`` is ``(N, S)``, ``residuals`` the ``(N,)`` reconstruction
    error norms, ``widths`` the ``(S,)`` per-segment point counts.
    """

    means: np.ndarray
    residuals: np.ndarray
    widths: np.ndarray
    length: int

    @property
    def n_segments(self) -> int:
        return self.means.shape[1]

    def weighted_norms(self) -> np.ndarray:
        """``(N,)`` width-weighted squared norms of the mean rows.

        Query-independent, so cached on the summary (and adoptable from
        a persisted index table): repeated lower-bound matrices against
        a million-row summary skip the O(N*S) reduction.
        """
        cached = getattr(self, "_norms_cache", None)
        if cached is None:
            cached = np.einsum(
                "js,s,js->j", self.means, self.widths, self.means
            )
            object.__setattr__(self, "_norms_cache", cached)
        return cached


@dataclass(frozen=True)
class IntervalSummary:
    """PAA summary of per-point bounding intervals (``low <= x <= high``).

    ``low_means``/``high_means`` are each ``(N, S)``; segment-averaging
    preserves containment, so any materialization's segment mean lies in
    ``[low_means, high_means]``.
    """

    low_means: np.ndarray
    high_means: np.ndarray
    widths: np.ndarray
    length: int

    @property
    def n_segments(self) -> int:
        return self.low_means.shape[1]


def summarize_values(matrix: np.ndarray, n_segments: int) -> PointSummary:
    """Build a :class:`PointSummary` from an ``(N, n)`` value stack."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    length = matrix.shape[1]
    n_segments = effective_segments(n_segments, length)
    means = segment_means(matrix, n_segments)
    return PointSummary(
        means=means,
        residuals=residual_norms(matrix, n_segments, means=means),
        widths=segment_widths(length, n_segments),
        length=length,
    )


def summarize_intervals(
    low: np.ndarray, high: np.ndarray, n_segments: int
) -> IntervalSummary:
    """Build an :class:`IntervalSummary` from ``(N, n)`` bound stacks."""
    low = np.atleast_2d(np.asarray(low, dtype=np.float64))
    high = np.atleast_2d(np.asarray(high, dtype=np.float64))
    if low.shape != high.shape:
        raise InvalidParameterError(
            f"bound stacks must share a shape, got {low.shape} vs "
            f"{high.shape}"
        )
    length = low.shape[1]
    n_segments = effective_segments(n_segments, length)
    return IntervalSummary(
        low_means=segment_means(low, n_segments),
        high_means=segment_means(high, n_segments),
        widths=segment_widths(length, n_segments),
        length=length,
    )


def _check_compatible(queries, candidates) -> None:
    if (
        queries.length != candidates.length
        or queries.n_segments != candidates.n_segments
    ):
        raise InvalidParameterError(
            f"summaries disagree on geometry: "
            f"({queries.length}, {queries.n_segments}) vs "
            f"({candidates.length}, {candidates.n_segments})"
        )


def paa_lower_bound(
    queries: PointSummary, candidates: PointSummary
) -> np.ndarray:
    """Admissible pairwise lower bounds, shape ``(M, N)``.

    ``sqrt(sum_s w_s * diff_s^2)`` is the Euclidean distance between the
    width-scaled mean vectors, so the whole matrix reduces to one GEMM
    through :func:`~repro.distances.lp.euclidean_matrix`.
    """
    _check_compatible(queries, candidates)
    widths = queries.widths
    q = queries.means
    c = candidates.means
    # Weighted norm expansion: only the (M, S) query side is scaled, so
    # a million-row candidate table is read in place (one GEMM, one
    # O(N*S) einsum) instead of copied.
    q_norms = queries.weighted_norms()
    c_norms = candidates.weighted_norms()
    scale = q_norms[:, None] + c_norms[None, :]
    squared = scale - 2.0 * (q * widths) @ c.T
    np.maximum(squared, 0.0, out=squared)
    # Near-duplicate pairs cancel catastrophically in the expansion; an
    # overestimated bound would break admissibility, so recompute them
    # with the exact difference formula (mirrors euclidean_matrix).
    suspects = np.argwhere(squared <= GEMM_REFINE_THRESHOLD * scale)
    for start in range(0, len(suspects), 1 << 16):
        block = suspects[start:start + (1 << 16)]
        diff = q[block[:, 0]] - c[block[:, 1]]
        squared[block[:, 0], block[:, 1]] = np.einsum(
            "is,s,is->i", diff, widths, diff
        )
    return np.sqrt(squared, out=squared)


def paa_upper_bound(
    lower: np.ndarray, queries: PointSummary, candidates: PointSummary
) -> np.ndarray:
    """Triangle-inequality upper bounds matching ``paa_lower_bound``.

    ``lower`` is exactly ``||q_hat - c_hat||``, so adding both
    reconstruction residual norms brackets the true distance.
    """
    return (
        lower
        + queries.residuals[:, None]
        + candidates.residuals[None, :]
    )


def interval_lower_bound(
    queries: IntervalSummary, candidates: IntervalSummary
) -> np.ndarray:
    """Lower bound on the distance between *any* materialization pair.

    For each segment the gap between the two mean-intervals,
    ``gap_s = max(q_low_s - c_high_s, c_low_s - q_high_s, 0)``, bounds
    ``|mean_s(q*) - mean_s(c*)|`` from below for every materialization
    ``q*``/``c*`` inside the point intervals, so
    ``sqrt(sum_s w_s gap_s^2)`` is an admissible PAA bound on their
    Euclidean distance.

    Applied with ``candidates`` built from Keogh *envelopes* (per-point
    ``[env_low, env_high]`` under a Sakoe-Chiba band), the same formula
    coarsens LB_Keogh segment-by-segment: the per-point envelope
    overshoot averaged over a segment dominates the mean-interval gap,
    and Cauchy-Schwarz gives ``sqrt(w_s) * mean <= ||overshoot_s||_2``,
    so the result also lower-bounds the *banded DTW* of every
    materialization pair.
    """
    _check_compatible(queries, candidates)
    n_queries = queries.low_means.shape[0]
    n_candidates = candidates.low_means.shape[0]
    out = np.empty((n_queries, n_candidates))
    widths = queries.widths
    for row in range(n_queries):
        gap = np.maximum(
            queries.low_means[row] - candidates.high_means,
            candidates.low_means - queries.high_means[row],
        )
        np.maximum(gap, 0.0, out=gap)
        out[row] = np.sqrt(np.square(gap) @ widths)
    return out
