"""Once-per-process deprecation warnings.

Every pre-policy keyword path and legacy service verb funnels through
:func:`warn_once`, which emits each distinct :class:`DeprecationWarning`
exactly once per process.  Python's own ``__warningregistry__`` dedupe
is keyed by (message, category, lineno) *per module that triggered the
warning*, which makes "did the shim warn?" dependent on call-site
layout; a single explicit registry keyed by a stable string makes the
contract testable — ``tests/test_policy.py`` asserts one warning per
key, no more.
"""

from __future__ import annotations

import threading
import warnings
from typing import Set

_SEEN: Set[str] = set()
_LOCK = threading.Lock()


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen.

    Returns whether the warning was actually emitted.  ``stacklevel``
    counts from the caller of the *deprecated* function (the default 3
    assumes one shim frame between here and user code).
    """
    with _LOCK:
        if key in _SEEN:
            return False
        _SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_deprecation_warnings() -> None:
    """Forget every emitted key (test isolation hook)."""
    with _LOCK:
        _SEEN.clear()
