"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  The helpers here normalize that choice
and derive independent child streams so that experiments are reproducible
and parallel-safe: two sub-tasks seeded from the same parent never share a
stream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used when the caller passes ``None``.  Fixed so that the
#: whole experiment suite is reproducible out of the box.
DEFAULT_SEED = 20120827  # first day of VLDB 2012, Istanbul


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to :data:`DEFAULT_SEED`; an existing generator is passed
    through unchanged (so callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and ``keys``.

    The child stream depends deterministically on the parent seed and on
    every key, so e.g. ``spawn(7, "fig5", dataset_name, query_index)``
    yields the same stream on every run but a different stream for every
    (figure, dataset, query) combination.

    Integer seeds are combined through :class:`numpy.random.SeedSequence`;
    when ``seed`` is already a generator we draw a fresh 64-bit state from
    it instead (sequential determinism).
    """
    hashed_keys = [_hash_key(key) for key in keys]
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    else:
        base = DEFAULT_SEED if seed is None else int(seed)
    sequence = np.random.SeedSequence([base, *hashed_keys])
    return np.random.default_rng(sequence)


def child_seeds(seed: SeedLike, count: int) -> Sequence[int]:
    """Return ``count`` deterministic integer seeds derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    else:
        base = DEFAULT_SEED if seed is None else int(seed)
    sequence = np.random.SeedSequence(base)
    return [int(s.generate_state(1)[0]) for s in sequence.spawn(count)]


def _hash_key(key: Union[int, str]) -> int:
    """Map a mixed-type key to a stable non-negative integer."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    # Stable string hash (Python's built-in hash is salted per process).
    digest = 2166136261
    for byte in str(key).encode("utf-8"):
        digest = ((digest ^ byte) * 16777619) & 0xFFFFFFFF
    return digest


def resolve_seed(seed: SeedLike) -> Optional[int]:
    """Return the integer seed behind ``seed`` or ``None`` for generators."""
    if isinstance(seed, np.random.Generator):
        return None
    return DEFAULT_SEED if seed is None else int(seed)
