"""Uncertain time-series models.

Section 2 of the paper defines an uncertain time series as a sequence of
random variables, one per timestamp, and reviews two concrete realizations:

* **pdf-based** (PROUD, DUST; paper Figure 1): a single observed value per
  timestamp plus knowledge of the error distribution around it —
  :class:`UncertainTimeSeries` here, with the per-timestamp error knowledge
  captured by :class:`ErrorModel`;
* **multi-sample** (MUNICH; paper Figure 2): repeated observations per
  timestamp, no distributional knowledge —
  :class:`MultisampleUncertainTimeSeries`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..distributions.base import ErrorDistribution
from .errors import InvalidParameterError, InvalidSeriesError, LengthMismatchError
from .series import TimeSeries, as_values, owns_readonly_buffer


class ErrorModel:
    """Per-timestamp error-distribution knowledge for one series.

    The paper's experiments include homogeneous errors (one distribution for
    every timestamp), mixed standard deviations (Figure 8: 20% of timestamps
    at σ=1.0, 80% at σ=0.4), and mixed families (Figure 9).  ``ErrorModel``
    represents all of these as a sequence of
    :class:`~repro.distributions.base.ErrorDistribution`, one per timestamp,
    with the homogeneous case stored compactly.
    """

    __slots__ = ("_distributions", "_length")

    def __init__(
        self,
        distributions: Union[ErrorDistribution, Sequence[ErrorDistribution]],
        length: Optional[int] = None,
    ) -> None:
        if isinstance(distributions, ErrorDistribution):
            if length is None:
                raise InvalidParameterError(
                    "length is required when a single distribution is given"
                )
            if length < 1:
                raise InvalidParameterError(f"length must be >= 1, got {length}")
            self._distributions: Tuple[ErrorDistribution, ...] = (distributions,)
            self._length = int(length)
        else:
            distributions = tuple(distributions)
            if not distributions:
                raise InvalidParameterError("at least one distribution is required")
            if length is not None and length != len(distributions):
                raise LengthMismatchError(
                    length, len(distributions), "ErrorModel length vs distributions"
                )
            self._distributions = distributions
            self._length = len(distributions)

    @classmethod
    def constant(cls, distribution: ErrorDistribution, length: int) -> "ErrorModel":
        """Homogeneous model: the same distribution at every timestamp."""
        return cls(distribution, length=length)

    @property
    def length(self) -> int:
        """Number of timestamps covered."""
        return self._length

    @property
    def is_homogeneous(self) -> bool:
        """True when every timestamp shares one distribution object."""
        return len(self._distributions) == 1 or len(set(self._distributions)) == 1

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, timestamp: int) -> ErrorDistribution:
        if not -self._length <= timestamp < self._length:
            raise IndexError(
                f"timestamp {timestamp} out of range for length {self._length}"
            )
        if len(self._distributions) == 1:
            return self._distributions[0]
        return self._distributions[timestamp]

    def __iter__(self):
        if len(self._distributions) == 1:
            single = self._distributions[0]
            return iter([single] * self._length)
        return iter(self._distributions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorModel):
            return NotImplemented
        return list(self) == list(other)

    def __repr__(self) -> str:
        if self.is_homogeneous:
            return f"ErrorModel({self._distributions[0]!r} x {self._length})"
        return f"ErrorModel(<heterogeneous>, length={self._length})"

    def stds(self) -> np.ndarray:
        """Per-timestamp error standard deviations as a float array."""
        return np.fromiter((d.std for d in self), dtype=np.float64, count=self._length)

    def variances(self) -> np.ndarray:
        """Per-timestamp error variances as a float array."""
        return np.fromiter(
            (d.variance for d in self), dtype=np.float64, count=self._length
        )

    def distinct(self) -> Tuple[ErrorDistribution, ...]:
        """The set of distinct distributions used, in first-seen order."""
        seen = []
        for distribution in self:
            if distribution not in seen:
                seen.append(distribution)
        return tuple(seen)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one error value per timestamp."""
        if len(self._distributions) == 1:
            return self._distributions[0].sample(rng, self._length)
        return np.array([d.sample(rng, ()) for d in self], dtype=np.float64)

    def with_reported(
        self, distributions: Union[ErrorDistribution, Sequence[ErrorDistribution]]
    ) -> "ErrorModel":
        """Build a *claimed* model of the same length (misinformation tests)."""
        return ErrorModel(distributions, length=self._length)


class UncertainTimeSeries:
    """pdf-based uncertain series: one observation + error model (Figure 1).

    This is the input format of PROUD and DUST.  ``observations`` holds the
    single measured value per timestamp; ``error_model`` is what the
    technique *believes* about the measurement error (which the
    misinformation experiments deliberately set different from the truth).
    """

    __slots__ = ("observations", "error_model", "label", "name")

    def __init__(
        self,
        observations: Iterable[float],
        error_model: ErrorModel,
        label: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self.observations = as_values(observations)
        if error_model.length != self.observations.size:
            raise LengthMismatchError(
                self.observations.size, error_model.length,
                "observations vs error model",
            )
        self.error_model = error_model
        self.label = label
        self.name = name

    def __len__(self) -> int:
        return int(self.observations.size)

    def __repr__(self) -> str:
        return (
            f"UncertainTimeSeries(n={len(self)}, error_model={self.error_model!r}, "
            f"name={self.name!r})"
        )

    @property
    def values(self) -> np.ndarray:
        """Alias for ``observations`` (the best point estimate)."""
        return self.observations

    def stds(self) -> np.ndarray:
        """Believed per-timestamp error standard deviations."""
        return self.error_model.stds()

    def as_certain(self) -> TimeSeries:
        """Drop the uncertainty: a certain series of the observations."""
        return TimeSeries(self.observations, label=self.label, name=self.name)

    def possible_world(self, rng: np.random.Generator) -> TimeSeries:
        """Sample one plausible exact series: observation + fresh error."""
        return TimeSeries(
            self.observations + self.error_model.sample(rng),
            label=self.label,
            name=self.name,
        )


class MultisampleUncertainTimeSeries:
    """Repeated-observation uncertain series (Figure 2), MUNICH's input.

    ``samples`` is an ``(n_timestamps, n_samples)`` matrix: row ``i`` holds
    the repeated measurements taken at timestamp ``i``.
    """

    __slots__ = ("samples", "label", "name")

    def __init__(
        self,
        samples: Iterable[Iterable[float]],
        label: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        matrix = np.asarray(samples, dtype=np.float64)
        if matrix.ndim != 2:
            raise InvalidSeriesError(
                f"samples must be a 2-D (timestamps x samples) matrix, "
                f"got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise InvalidSeriesError("samples matrix must be non-empty")
        if not np.all(np.isfinite(matrix)):
            raise InvalidSeriesError("samples must be finite")
        if not owns_readonly_buffer(matrix):
            # Fully read-only inputs (memory-mapped sample stacks from
            # repro.core.mmapio) are adopted without copying.
            matrix = matrix.copy()
            matrix.setflags(write=False)
        self.samples = matrix
        self.label = label
        self.name = name

    def __len__(self) -> int:
        return int(self.samples.shape[0])

    def __repr__(self) -> str:
        return (
            f"MultisampleUncertainTimeSeries(n={len(self)}, "
            f"samples_per_timestamp={self.samples_per_timestamp}, "
            f"name={self.name!r})"
        )

    @property
    def samples_per_timestamp(self) -> int:
        """The paper's ``s``: number of repeated observations per timestamp."""
        return int(self.samples.shape[1])

    @property
    def n_materializations(self) -> int:
        """``s ** n``: number of certain series this model can materialize."""
        return self.samples_per_timestamp ** len(self)

    def means(self) -> np.ndarray:
        """Per-timestamp sample means (a certain point estimate)."""
        return self.samples.mean(axis=1)

    def stds(self, ddof: int = 1) -> np.ndarray:
        """Per-timestamp sample standard deviations."""
        if self.samples_per_timestamp <= ddof:
            return np.zeros(len(self))
        return self.samples.std(axis=1, ddof=ddof)

    def as_certain(self) -> TimeSeries:
        """Collapse to a certain series using per-timestamp means."""
        return TimeSeries(self.means(), label=self.label, name=self.name)

    def bounding_intervals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Minimal bounding interval ``[min, max]`` per timestamp.

        These are MUNICH's summarization structures for distance bounding
        (Section 2.1: "summarizing the repeated samples using minimal
        bounding intervals").
        """
        return self.samples.min(axis=1), self.samples.max(axis=1)

    def materialize(self, choice: Sequence[int]) -> TimeSeries:
        """Materialize one certain series by picking sample ``choice[i]``
        at each timestamp ``i`` (one element of the paper's ``TS_X`` set)."""
        choice = np.asarray(choice, dtype=np.intp)
        if choice.shape != (len(self),):
            raise InvalidParameterError(
                f"choice must have one index per timestamp "
                f"({len(self)}), got shape {choice.shape}"
            )
        if np.any(choice < 0) or np.any(choice >= self.samples_per_timestamp):
            raise InvalidParameterError(
                "choice indices must be in "
                f"[0, {self.samples_per_timestamp})"
            )
        rows = np.arange(len(self))
        return TimeSeries(self.samples[rows, choice], label=self.label, name=self.name)
