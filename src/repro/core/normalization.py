"""Preprocessing transforms: z-normalization and resampling.

Section 2 of the paper assumes series normalized to zero mean and unit
variance.  Section 4.3 (Figure 12) additionally varies the series length
between 50 and 1000 points by *resampling* the raw sequences; the linear
resampler here mirrors that step.
"""

from __future__ import annotations

import numpy as np

from .errors import InvalidParameterError, InvalidSeriesError
from .series import TimeSeries, as_values

#: Standard-deviation floor below which a series is considered constant and
#: mapped to all-zeros instead of dividing by (nearly) zero.
_CONSTANT_STD_EPSILON = 1e-12


def znormalize_values(values: np.ndarray) -> np.ndarray:
    """Return ``values`` shifted to zero mean and scaled to unit variance.

    Constant series (zero standard deviation) normalize to all zeros, the
    conventional choice that keeps downstream distances finite.
    """
    array = np.asarray(values, dtype=np.float64)
    mean = array.mean()
    std = array.std()
    # The constancy threshold is relative to the value magnitude: a series
    # of large identical floats has std ~1e-11 from rounding alone, and
    # dividing by it would amplify pure noise.
    threshold = _CONSTANT_STD_EPSILON * max(1.0, abs(mean))
    if std < threshold:
        return np.zeros_like(array)
    return (array - mean) / std


def znormalize(series: TimeSeries) -> TimeSeries:
    """Z-normalize a :class:`TimeSeries`, keeping its metadata."""
    return series.with_values(znormalize_values(series.values))


def is_znormalized(values: np.ndarray, tolerance: float = 1e-6) -> bool:
    """Check whether ``values`` has ~zero mean and ~unit standard deviation."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return False
    return (
        abs(float(array.mean())) <= tolerance
        and abs(float(array.std()) - 1.0) <= tolerance
    )


def resample_values(values: np.ndarray, length: int) -> np.ndarray:
    """Linearly resample ``values`` to ``length`` points.

    Used by the Figure 12 experiment to obtain series of lengths 50..1000
    from the raw sequences.  Resampling to the original length returns an
    identical copy.
    """
    if length < 2:
        raise InvalidParameterError(f"resample length must be >= 2, got {length}")
    array = as_values(values)
    if array.size == 1:
        return np.full(length, array[0])
    source_positions = np.linspace(0.0, 1.0, num=array.size)
    target_positions = np.linspace(0.0, 1.0, num=length)
    return np.interp(target_positions, source_positions, array)


def resample(series: TimeSeries, length: int) -> TimeSeries:
    """Resample a :class:`TimeSeries` to ``length`` points."""
    return series.with_values(resample_values(series.values, length))


def truncate(series: TimeSeries, length: int) -> TimeSeries:
    """Return the first ``length`` points of ``series``.

    The paper's Figure 4 experiment truncates Gun Point series to length 6.
    """
    if length < 1:
        raise InvalidParameterError(f"truncate length must be >= 1, got {length}")
    if length > len(series):
        raise InvalidSeriesError(
            f"cannot truncate series of length {len(series)} to {length}"
        )
    return series.slice(0, length)
