"""Certain (exact-valued) time series.

The paper (Section 2) defines a time series ``S = <s1, ..., sn>`` as a
sequence of real values at discrete, equally spaced timestamps.  This module
provides the :class:`TimeSeries` wrapper used throughout the library: a thin,
immutable view over a ``float64`` numpy array carrying an optional label
(class id, used by dataset generators) and name.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from .errors import InvalidSeriesError


def owns_readonly_buffer(array: np.ndarray) -> bool:
    """Whether ``array`` and its whole base chain are non-writeable.

    Only then is adopting the array without a defensive copy safe: a
    read-only *view* of a writeable base (``base[:]`` +
    ``setflags(write=False)``) can still be mutated through the base,
    which would silently desynchronize the engine's cached matrices.
    Memory-mapped rows (``np.load(..., mmap_mode="r")``) pass — every
    level of their chain is read-only.
    """
    while isinstance(array, np.ndarray):
        if array.flags.writeable:
            return False
        if array.base is None:
            return True
        array = array.base
    # Non-ndarray base (e.g. the mmap buffer of a read-only memmap):
    # nothing above was writeable, so the data cannot be mutated through
    # any ndarray reference.
    return True


def as_values(values: Iterable[float], *, allow_empty: bool = False) -> np.ndarray:
    """Validate and convert ``values`` to a read-only 1-D ``float64`` array.

    Raises :class:`InvalidSeriesError` when the input is empty (unless
    ``allow_empty``), not one-dimensional, or contains NaN/inf.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(
            f"time series must be one-dimensional, got shape {array.shape}"
        )
    if array.size == 0 and not allow_empty:
        raise InvalidSeriesError("time series must contain at least one point")
    if array.size and not np.all(np.isfinite(array)):
        raise InvalidSeriesError("time series values must be finite")
    if not owns_readonly_buffer(array):
        # Writeable (anywhere in the base chain) inputs are defensively
        # snapshotted.  Fully read-only arrays are adopted as-is:
        # memory-mapped collection rows (repro.core.mmapio) stay
        # zero-copy views of the on-disk matrix.
        array = array.copy()
        array.setflags(write=False)
    return array


class TimeSeries:
    """An exact-valued time series.

    Parameters
    ----------
    values:
        The real-valued points, one per timestamp.
    label:
        Optional class label (dataset generators attach the class id here;
        the similarity harness never looks at it).
    name:
        Optional identifier, e.g. ``"GunPoint/042"``.
    """

    __slots__ = ("values", "label", "name")

    def __init__(
        self,
        values: Iterable[float],
        label: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self.values = as_values(values)
        self.label = label
        self.name = name

    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            np.array_equal(self.values, other.values)
            and self.label == other.label
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.values.tobytes(), self.label, self.name))

    def __repr__(self) -> str:
        head = np.array2string(self.values[:4], precision=3, separator=", ")
        suffix = ", ..." if len(self) > 4 else ""
        return (
            f"TimeSeries(n={len(self)}, values={head[:-1]}{suffix}], "
            f"label={self.label!r}, name={self.name!r})"
        )

    @property
    def length(self) -> int:
        """Number of timestamps (the paper's ``n``)."""
        return len(self)

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        return float(np.mean(self.values))

    def std(self) -> float:
        """Population standard deviation of the values."""
        return float(np.std(self.values))

    def with_values(self, values: Iterable[float]) -> "TimeSeries":
        """Return a copy of this series with new values, same metadata."""
        return TimeSeries(values, label=self.label, name=self.name)

    def slice(self, start: int, stop: int) -> "TimeSeries":
        """Return the subsequence ``[start, stop)`` keeping metadata."""
        if not 0 <= start < stop <= len(self):
            raise InvalidSeriesError(
                f"invalid slice [{start}, {stop}) for series of length {len(self)}"
            )
        return TimeSeries(self.values[start:stop], label=self.label, name=self.name)
