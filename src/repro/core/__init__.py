"""Core data model: exact series, uncertain series, collections, transforms."""

from __future__ import annotations

from .collection import Collection
from .errors import (
    DatasetError,
    DistributionError,
    InvalidParameterError,
    InvalidSeriesError,
    LengthMismatchError,
    ReproError,
    UnsupportedQueryError,
)
from .normalization import (
    is_znormalized,
    resample,
    resample_values,
    truncate,
    znormalize,
    znormalize_values,
)
from .kernels import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from .mmapio import (
    MANIFEST_NAME,
    MappedCollection,
    MappedCollectionError,
    StreamingCollectionWriter,
    build_index,
    build_warm_cache,
    load_collection,
    save_collection,
)
from .rng import DEFAULT_SEED, child_seeds, make_rng, spawn
from .series import TimeSeries, as_values
from .summaries import (
    DEFAULT_SEGMENTS,
    IntervalSummary,
    PointSummary,
    interval_lower_bound,
    paa_lower_bound,
    paa_upper_bound,
    summarize_intervals,
    summarize_values,
)
from .uncertain import (
    ErrorModel,
    MultisampleUncertainTimeSeries,
    UncertainTimeSeries,
)

__all__ = [
    "Collection",
    "TimeSeries",
    "UncertainTimeSeries",
    "MultisampleUncertainTimeSeries",
    "ErrorModel",
    "MappedCollection",
    "MappedCollectionError",
    "save_collection",
    "load_collection",
    "build_index",
    "build_warm_cache",
    "StreamingCollectionWriter",
    "MANIFEST_NAME",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
    "DEFAULT_SEGMENTS",
    "PointSummary",
    "IntervalSummary",
    "summarize_values",
    "summarize_intervals",
    "paa_lower_bound",
    "paa_upper_bound",
    "interval_lower_bound",
    "as_values",
    "znormalize",
    "znormalize_values",
    "is_znormalized",
    "resample",
    "resample_values",
    "truncate",
    "make_rng",
    "spawn",
    "child_seeds",
    "DEFAULT_SEED",
    "ReproError",
    "InvalidSeriesError",
    "LengthMismatchError",
    "InvalidParameterError",
    "DistributionError",
    "UnsupportedQueryError",
    "DatasetError",
]
