"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidSeriesError(ReproError):
    """A time series is malformed (empty, non-finite, wrong dimensionality)."""


class LengthMismatchError(ReproError):
    """Two series that must be aligned have different lengths."""

    def __init__(self, len_a: int, len_b: int, context: str = "") -> None:
        detail = f" ({context})" if context else ""
        super().__init__(
            f"series lengths differ: {len_a} != {len_b}{detail}"
        )
        self.len_a = len_a
        self.len_b = len_b


class InvalidParameterError(ReproError):
    """A user-supplied parameter is outside its valid domain."""


class DistributionError(ReproError):
    """An error distribution cannot be constructed or evaluated."""


class UnsupportedQueryError(ReproError):
    """A query type is not supported by the selected technique."""


class DatasetError(ReproError):
    """A dataset cannot be generated or loaded."""
